// Extension harness (beyond the paper's figures): backfilling quality when
// walltime estimates come from the system's own runtime predictors instead
// of users — closing the loop between use case 1 and the scheduler.
#include <ostream>

#include "common.hpp"
#include "core/estimate_study.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_ext_prediction_backfill(const Args& args_in,
                                        std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    args.study.systems = {"Theta", "Philly"};
  }
  if (!args.study.duration_days) args.study.duration_days = 30.0;
  banner(out,
         "Extension: EASY backfilling on system-generated runtime estimates",
         "tighter estimates (oracle > gbrt/last2 > user requests) should "
         "reduce waits via better backfilling, while *underestimates* kill "
         "jobs at their predicted limit — the cost the paper's "
         "Underestimate Rate metric guards against");

  obs::Report report;
  report.harness = "ext_prediction_backfill";
  report.figure = "Extension: predictor-driven backfilling";

  const auto study = make_study(args);
  for (const auto& trace : study.traces()) {
    core::EstimateStudyConfig config;
    config.max_jobs = args.jobs_cap(config.max_jobs, 4000);
    const auto result = core::run_estimate_study(trace, config);
    out << core::render_estimate_study(result) << '\n';
    for (const auto& row : result.rows) {
      const std::string key =
          result.system + "." + core::to_string(row.source);
      report.set("wait_s." + key, row.metrics.avg_wait);
      report.set("killed_by_underestimate." + key,
                 static_cast<double>(row.killed_by_underestimate));
    }
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_prediction_backfill)
