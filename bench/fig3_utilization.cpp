// Fig 3: system utilization, reconstructed from recorded job placement.
#include <algorithm>
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_fig3_utilization(const Args& args, std::ostream& out) {
  banner(out, "Fig 3: system utilization",
         "Philly lowest (~43% average, virtual-cluster fragmentation), "
         "Helios below 80% most of the time, HPC systems ~70-90%");
  const auto study = make_study(args);
  const auto utils = study.utilizations();
  out << analysis::render_utilization(utils) << '\n';

  // Utilization timeline, decimated to ~daily points.
  out << "Daily utilization series:\n";
  util::TextTable t([&] {
    std::vector<std::string> header{"Day"};
    for (const auto& u : utils) header.push_back(u.system);
    return header;
  }());
  std::size_t max_days = 0;
  for (const auto& u : utils) {
    max_days = std::max(max_days, u.series.size() / 24);
  }
  for (std::size_t d = 0; d < max_days; ++d) {
    std::vector<std::string> row{std::to_string(d)};
    bool any = false;
    for (const auto& u : utils) {
      const std::size_t lo = d * 24;
      if (lo >= u.series.size()) {
        row.push_back("-");
        continue;
      }
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t h = lo; h < std::min(u.series.size(), lo + 24); ++h) {
        sum += u.series[h];
        ++n;
      }
      row.push_back(util::percent(sum / static_cast<double>(n), 0));
      any = true;
    }
    if (any) t.add_row(row);
    if (d >= 30) break;  // cap the printout
  }
  out << t.render();

  obs::Report report;
  report.harness = "fig3_utilization";
  report.figure = "Figure 3";
  for (const auto& u : utils) {
    report.set("avg_utilization." + u.system, u.average);
    report.set("frac_hours_above_80." + u.system, u.frac_above_80);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig3_utilization)
