// Extension harness: crash-consistency chaos drill for the serve mode.
//
// Drives the real `lumos_serve` binary (located via the LUMOS_SERVE_BIN
// compile definition, overridable by the environment variable of the same
// name) through seeded kill-and-resume drills and asserts the crash-
// consistency contract of DESIGN.md §4g end to end:
//
//   1. generates a synthetic trace, renders it to an SWF file, and runs an
//      uninterrupted in-process ingest as the baseline report;
//   2. for each of three seeded kill points P: writes the file truncated
//      at P events, starts the daemon with --follow + periodic
//      checkpoints, polls the checkpoint document until its cursor has
//      stabilized at C = floor(P / E) * E events, SIGKILLs the daemon
//      (no warning, no flush — the worst case), appends the remaining
//      events, restarts, and requires: exit 0, a final report whose
//      deterministic metrics are IDENTICAL to the baseline, and exactly
//      total - C replayed events (strictly fewer than total — the
//      checkpoint did real work);
//   3. one graceful drill: SIGTERM instead of SIGKILL must flush a final
//      checkpoint at exactly P events (nothing lost), exit 0, and resume
//      to the identical report.
//
// The kill points are deterministic in --seed, and every kill lands on a
// checkpoint boundary by construction (the poll waits for the stable
// final cursor), so metrics — including replayed-event counts — are
// bit-reproducible and --verify-safe. Wall-clock recovery times land in
// gauges, outside the determinism contract.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common.hpp"
#include "harnesses.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "stream/ingest.hpp"
#include "synth/generator.hpp"
#include "trace/swf.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#ifndef LUMOS_SERVE_BIN
#define LUMOS_SERVE_BIN "lumos_serve"
#endif

namespace lumos::bench {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string serve_binary() {
  if (const char* env = std::getenv("LUMOS_SERVE_BIN")) return env;
  return LUMOS_SERVE_BIN;
}

/// fork/exec the daemon with stdout+stderr sent to `log_path`; returns
/// the pid. The harness needs an *asynchronous* child (poll, then kill),
/// which is why this does not go through supervise::run_child.
pid_t spawn_serve(const std::vector<std::string>& args,
                  const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  // Flush everything pending: the child's freopen would otherwise flush
  // the inherited stdio buffer (the harness banner) to the real stdout.
  // lumos-lint: allow(stdout-io) fork hygiene, not logging
  std::cout.flush();
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw InternalError("ext_serve_chaos: fork failed");
  if (pid == 0) {
    if (std::freopen(log_path.c_str(), "a", stdout) == nullptr ||
        std::freopen(log_path.c_str(), "a", stderr) == nullptr) {
      _exit(127);
    }
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failure; the parent sees exit code 127
  }
  return pid;
}

int wait_exit(pid_t pid, const char* what) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    throw InternalError(std::string("ext_serve_chaos: waitpid failed for ") +
                        what);
  }
  if (!WIFEXITED(status)) {
    throw InternalError(std::string("ext_serve_chaos: ") + what +
                        " died on signal " +
                        std::to_string(WTERMSIG(status)));
  }
  return WEXITSTATUS(status);
}

/// Polls the checkpoint document until cursor.events == want (the stable
/// post-ingest value) or the deadline passes. The checkpoint is written
/// atomically, so every successful parse sees a complete document.
void await_checkpoint_events(const std::string& path, std::uint64_t want,
                             pid_t child, double deadline_s) {
  const auto start = Clock::now();
  for (;;) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        const obs::Json doc = obs::Json::parse(text.str());
        if (const obs::Json* cursor = doc.find("cursor")) {
          if (const obs::Json* events = cursor->find("events")) {
            if (static_cast<std::uint64_t>(events->as_int()) == want) {
              return;
            }
          }
        }
      } catch (const Error&) {
        // torn read impossible (atomic write) but an empty file mid-
        // creation is not; just poll again
      }
    }
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) {
      throw InternalError(
          "ext_serve_chaos: daemon exited while waiting for checkpoint "
          "(wanted " + std::to_string(want) + " events)");
    }
    if (std::chrono::duration<double>(Clock::now() - start).count() >
        deadline_s) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
      throw InternalError(
          "ext_serve_chaos: checkpoint never reached " +
          std::to_string(want) + " events within deadline");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

obs::Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw InternalError("ext_serve_chaos: cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return obs::Json::parse(text.str());
}

double counter_of(const obs::Json& report_entry, const std::string& name) {
  const obs::Json* counters = report_entry.find("counters");
  const obs::Json* value =
      counters != nullptr ? counters->find(name) : nullptr;
  if (value == nullptr) {
    throw InternalError("ext_serve_chaos: report lacks counter " + name);
  }
  return value->as_double();
}

void write_file(const std::string& path, std::string_view text,
                bool append) {
  std::ofstream out(path, append ? std::ios::binary | std::ios::app
                                 : std::ios::binary);
  if (!out || !(out << text)) {
    throw InternalError("ext_serve_chaos: cannot write " + path);
  }
}

}  // namespace

obs::Report run_ext_serve_chaos(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) args.study.systems = {"Theta"};
  banner(out, "Extension: serve-mode chaos drill (kill -9 and resume)",
         "a checkpointed daemon killed at any instant restarts, replays "
         "only the gap since its last checkpoint, and produces a final "
         "report identical to an uninterrupted run");

  obs::Report report;
  report.harness = "ext_serve_chaos";
  report.figure = "Extension: crash-consistent serve mode";

  // --- trace -> SWF text, split into header + per-job lines -----------
  synth::GeneratorOptions gen;
  gen.seed = args.study.seed;
  gen.duration_days = args.days_or(args.smoke ? 2.0 : 7.0);
  const trace::Trace trace =
      synth::generate_system(args.study.systems.front(), gen);
  if (trace.jobs().empty()) {
    throw InternalError("generated trace is empty");
  }
  std::ostringstream swf;
  trace::write_swf(swf, trace);
  const std::string full_text = swf.str();

  // Byte offset just past each job line (header comment lines excluded),
  // so "the file truncated at P events" is an exact byte prefix and the
  // later append extends it without rewriting anything — which keeps the
  // checkpoint's input fingerprint valid across the kill.
  std::vector<std::size_t> job_line_end;
  std::size_t line_start = 0;
  while (line_start < full_text.size()) {
    std::size_t nl = full_text.find('\n', line_start);
    if (nl == std::string::npos) nl = full_text.size() - 1;
    if (full_text[line_start] != ';') job_line_end.push_back(nl + 1);
    line_start = nl + 1;
  }
  const std::uint64_t total = job_line_end.size();
  const std::uint64_t cadence = std::max<std::uint64_t>(1, total / 20);

  const fs::path dir =
      fs::temp_directory_path() /
      ("lumos_chaos_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // --- uninterrupted baseline (in-process, same loop the daemon runs) --
  const std::string baseline_swf = (dir / "baseline.swf").string();
  write_file(baseline_swf, full_text, /*append=*/false);
  stream::IngestOptions base_opts;
  base_opts.input_path = baseline_swf;
  base_opts.output_path = (dir / "baseline.json").string();
  base_opts.report_every_events = 0;
  const stream::IngestResult baseline = stream::run_ingest(base_opts);
  if (baseline.events != total) {
    throw InternalError("ext_serve_chaos: baseline ingested " +
                        std::to_string(baseline.events) + " of " +
                        std::to_string(total) + " events");
  }
  const obs::Json baseline_doc = read_json_file(base_opts.output_path);
  const obs::Json* baseline_entry = baseline_doc.find("lumos_serve");
  const obs::Json* baseline_metrics =
      baseline_entry != nullptr ? baseline_entry->find("metrics") : nullptr;
  if (baseline_metrics == nullptr) {
    throw InternalError("ext_serve_chaos: baseline report lacks metrics");
  }

  report.set("chaos.total_events", static_cast<double>(total));
  report.set("chaos.checkpoint_every", static_cast<double>(cadence));

  // --- seeded drills ---------------------------------------------------
  // Three SIGKILL points plus one graceful SIGTERM drill. Fractions come
  // from the seeded rng => deterministic in --seed, reproducible under
  // --verify.
  util::Rng rng(args.study.seed ^ 0xc7a05c7a05ULL);
  struct Drill {
    std::uint64_t kill_at_events;  ///< P: events in the truncated file
    bool graceful;                 ///< SIGTERM (flush) vs SIGKILL
  };
  std::vector<Drill> drills;
  for (int i = 0; i < 3; ++i) {
    const double frac = 0.25 + 0.6 * rng.uniform();
    drills.push_back(Drill{
        std::max<std::uint64_t>(cadence,
                                static_cast<std::uint64_t>(
                                    frac * static_cast<double>(total))),
        /*graceful=*/false});
  }
  drills.push_back(
      Drill{std::max<std::uint64_t>(cadence, total / 2), /*graceful=*/true});

  const std::string bin = serve_binary();
  auto& registry = obs::Registry::global();
  util::TextTable table(
      {"drill", "kind", "killed at", "checkpointed", "replayed",
       "identical"});

  for (std::size_t d = 0; d < drills.size(); ++d) {
    const Drill& drill = drills[d];
    const std::uint64_t p = drill.kill_at_events;
    const fs::path ddir = dir / ("drill_" + std::to_string(d));
    fs::create_directories(ddir);
    const std::string swf_path = (ddir / "stream.swf").string();
    const std::string report_path = (ddir / "report.json").string();
    const std::string checkpoint_path = (ddir / "checkpoint.json").string();
    const std::string log_path = (ddir / "serve.log").string();

    const std::size_t cut = job_line_end[p - 1];
    write_file(swf_path, std::string_view(full_text).substr(0, cut),
               /*append=*/false);

    // Phase 1: daemon tails the truncated file with periodic checkpoints.
    const std::vector<std::string> follow_args = {
        bin, "--in", swf_path, "--out", report_path,
        "--checkpoint", checkpoint_path,
        "--checkpoint-every", std::to_string(cadence),
        "--every", "0", "--follow",
        "--idle-timeout-s", "600", "--poll-interval-s", "0.02"};
    const pid_t pid = spawn_serve(follow_args, log_path);

    // The last cadence checkpoint before the cut is the stable value the
    // poll waits for; killing after it makes the replay count exact.
    const std::uint64_t checkpointed = (p / cadence) * cadence;
    const auto phase1_start = Clock::now();
    if (drill.graceful) {
      await_checkpoint_events(checkpoint_path, checkpointed, pid, 60.0);
      ::kill(pid, SIGTERM);
      const int code = wait_exit(pid, "graceful daemon");
      if (code != 0) {
        throw InternalError(
            "ext_serve_chaos: graceful shutdown exited with code " +
            std::to_string(code));
      }
    } else {
      await_checkpoint_events(checkpoint_path, checkpointed, pid, 60.0);
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    registry.histogram("chaos.phase1_seconds")
        .observe(std::chrono::duration<double>(Clock::now() - phase1_start)
                     .count());

    // A graceful SIGTERM flushes a final checkpoint covering everything
    // it consumed (all p events); a SIGKILL leaves the last cadence one.
    const std::uint64_t resumed = drill.graceful ? p : checkpointed;
    {
      const obs::Json cp = read_json_file(checkpoint_path);
      const std::uint64_t cursor_events = static_cast<std::uint64_t>(
          cp.find("cursor")->find("events")->as_int());
      if (cursor_events != resumed) {
        throw InternalError(
            "ext_serve_chaos: drill " + std::to_string(d) +
            " checkpoint covers " + std::to_string(cursor_events) +
            " events, expected " + std::to_string(resumed));
      }
    }

    // Phase 2: grow the file to full length, restart, run to completion.
    write_file(swf_path, std::string_view(full_text).substr(cut),
               /*append=*/true);
    const auto recovery_start = Clock::now();
    const std::vector<std::string> resume_args = {
        bin, "--in", swf_path, "--out", report_path,
        "--checkpoint", checkpoint_path,
        "--checkpoint-every", std::to_string(cadence),
        "--every", "0"};
    const pid_t pid2 = spawn_serve(resume_args, log_path);
    const int code = wait_exit(pid2, "resumed daemon");
    if (code != 0) {
      throw InternalError("ext_serve_chaos: resumed daemon exited with " +
                          std::to_string(code));
    }
    registry.histogram("chaos.recovery_seconds")
        .observe(
            std::chrono::duration<double>(Clock::now() - recovery_start)
                .count());

    // Contract: identical metrics, exact replay accounting.
    const obs::Json final_doc = read_json_file(report_path);
    const obs::Json* entry = final_doc.find("lumos_serve");
    const obs::Json* metrics =
        entry != nullptr ? entry->find("metrics") : nullptr;
    const bool identical =
        metrics != nullptr && baseline_metrics != nullptr &&
        *metrics == *baseline_metrics;
    const double replayed = counter_of(*entry, "stream.replayed_events");
    const double resumed_ctr = counter_of(*entry, "stream.resumed_events");
    const std::string key = "chaos.drill" + std::to_string(d);
    report.set(key + ".report_identical", identical ? 1.0 : 0.0);
    report.set(key + ".replayed_events", replayed);
    report.set(key + ".resumed_events", resumed_ctr);
    table.add_row({std::to_string(d),
                   drill.graceful ? "SIGTERM" : "SIGKILL",
                   std::to_string(p), std::to_string(resumed),
                   std::to_string(static_cast<std::uint64_t>(replayed)),
                   identical ? "yes" : "NO"});
    if (!identical) {
      throw InternalError("ext_serve_chaos: drill " + std::to_string(d) +
                          " final report differs from baseline");
    }
    if (resumed_ctr != static_cast<double>(resumed) ||
        replayed != static_cast<double>(total - resumed) ||
        replayed >= static_cast<double>(total)) {
      throw InternalError(
          "ext_serve_chaos: drill " + std::to_string(d) +
          " replay accounting wrong (resumed " +
          std::to_string(resumed_ctr) + ", replayed " +
          std::to_string(replayed) + ", total " + std::to_string(total) +
          ")");
    }
  }

  report.set("chaos.drills", static_cast<double>(drills.size()));
  registry.counter("chaos.drills").add(drills.size());

  out << table.render();
  out << total << " events, checkpoint every " << cadence
      << "; every drill resumed to a report identical to the "
       "uninterrupted baseline\n";
  fs::remove_all(dir);
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_serve_chaos)
