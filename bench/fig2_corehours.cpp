// Fig 2: core-hour domination of job size / length groups.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig2_corehours(const Args& args, std::ostream& out) {
  banner(out, "Fig 2: core-hour domination by job group",
         "BW small jobs >85% of core hours; Mira/Theta/Philly/Helios small "
         "<35%/<16%/<19%/<5%; HPC dominated by middle-length jobs, DL by "
         "long jobs");
  const auto study = make_study(args);
  const auto doms = study.dominations();
  out << analysis::render_domination(doms);

  obs::Report report;
  report.harness = "fig2_corehours";
  report.figure = "Figure 2";
  for (const auto& d : doms) {
    report.set("dominant_size_share." + d.system, d.dominant_size_share);
    report.set("dominant_length_share." + d.system, d.dominant_length_share);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig2_corehours)
