// Fig 2: core-hour domination of job size / length groups.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 2: core-hour domination by job group",
      "BW small jobs >85% of core hours; Mira/Theta/Philly/Helios small "
      "<35%/<16%/<19%/<5%; HPC dominated by middle-length jobs, DL by long "
      "jobs");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_domination(study.dominations());
  return 0;
}
