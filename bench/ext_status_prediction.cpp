// Extension harness: job-status prediction from elapsed time (the §V-C
// observation made operational — Fig 11's separable per-user distributions
// imply a scheduler can predict whether a running job will pass).
#include <iostream>

#include "common.hpp"
#include "predict/status_predictor.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    args.study.systems = {"Philly", "BlueWaters"};
  }
  if (!args.study.duration_days) args.study.duration_days = 30.0;
  lumos::bench::banner(
      "Extension: predicting final job status from elapsed time",
      "knowing a job has already run T seconds should improve doomed-job "
      "classification over the no-elapsed baseline, increasingly with T");

  const auto study = lumos::bench::make_study(args);
  for (const auto& trace : study.traces()) {
    const auto result = lumos::predict::run_status_study(trace);
    std::cout << "\nSystem " << result.system << " (avg runtime "
              << lumos::util::fixed(result.avg_runtime_s, 0) << " s):\n";
    lumos::util::TextTable t({"elapsed", "doomed rate", "accuracy base",
                              "accuracy +elapsed", "test jobs"});
    for (const auto& row : result.rows) {
      t.add_row({lumos::util::format("avg/%.0f", 1.0 / row.elapsed_fraction),
                 lumos::util::percent(row.doomed_rate),
                 lumos::util::percent(row.base_accuracy),
                 lumos::util::percent(row.accuracy),
                 std::to_string(row.test_jobs)});
    }
    std::cout << t.render();
  }
  return 0;
}
