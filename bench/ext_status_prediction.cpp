// Extension harness: job-status prediction from elapsed time (the §V-C
// observation made operational — Fig 11's separable per-user distributions
// imply a scheduler can predict whether a running job will pass).
#include <ostream>

#include "common.hpp"
#include "harnesses.hpp"
#include "predict/status_predictor.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_ext_status_prediction(const Args& args_in,
                                      std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    args.study.systems = {"Philly", "BlueWaters"};
  }
  if (!args.study.duration_days) args.study.duration_days = 30.0;
  banner(out, "Extension: predicting final job status from elapsed time",
         "knowing a job has already run T seconds should improve doomed-job "
         "classification over the no-elapsed baseline, increasingly with T");

  obs::Report report;
  report.harness = "ext_status_prediction";
  report.figure = "Extension: status prediction";

  const auto study = make_study(args);
  for (const auto& trace : study.traces()) {
    predict::StatusStudyConfig config;
    config.max_jobs = args.jobs_cap(config.max_jobs, 4000);
    const auto result = predict::run_status_study(trace, config);
    out << "\nSystem " << result.system << " (avg runtime "
        << util::fixed(result.avg_runtime_s, 0) << " s):\n";
    util::TextTable t({"elapsed", "doomed rate", "accuracy base",
                       "accuracy +elapsed", "test jobs"});
    double gain = 0.0;
    for (const auto& row : result.rows) {
      gain += row.accuracy - row.base_accuracy;
      t.add_row({util::format("avg/%.0f", 1.0 / row.elapsed_fraction),
                 util::percent(row.doomed_rate),
                 util::percent(row.base_accuracy), util::percent(row.accuracy),
                 std::to_string(row.test_jobs)});
    }
    out << t.render();
    if (!result.rows.empty()) {
      report.set("accuracy_gain." + result.system,
                 gain / static_cast<double>(result.rows.size()));
      report.set("doomed_rate." + result.system,
                 result.rows.back().doomed_rate);
    }
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_status_prediction)
