// Fig 4: CDFs of job waiting time and turnaround time.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 4: waiting and turnaround time CDFs",
      "Helios: ~80% wait <10s; Philly: >50% wait >=10min; Blue Waters "
      "longest (median ~1.5h, roughly its median runtime)");
  const auto study = lumos::bench::make_study(args);
  const auto waits = study.waitings();
  std::cout << lumos::analysis::render_waiting(waits) << '\n';

  std::cout << "Wait-time CDF (quantiles):\n";
  lumos::util::TextTable t([&] {
    std::vector<std::string> header{"P(wait <= x)"};
    for (const auto& w : waits) header.push_back(w.system);
    return header;
  }());
  for (int q10 = 1; q10 <= 9; ++q10) {
    const double q = q10 / 10.0;
    std::vector<std::string> row{lumos::util::percent(q, 0)};
    for (const auto& w : waits) {
      row.push_back(lumos::util::format_duration(w.wait_cdf.quantile(q)));
    }
    t.add_row(row);
  }
  std::cout << t.render();
  return 0;
}
