// Fig 4: CDFs of job waiting time and turnaround time.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

namespace lumos::bench {

obs::Report run_fig4_waiting(const Args& args, std::ostream& out) {
  banner(out, "Fig 4: waiting and turnaround time CDFs",
         "Helios: ~80% wait <10s; Philly: >50% wait >=10min; Blue Waters "
         "longest (median ~1.5h, roughly its median runtime)");
  const auto study = make_study(args);
  const auto waits = study.waitings();
  out << analysis::render_waiting(waits) << '\n';

  out << "Wait-time CDF (quantiles):\n";
  util::TextTable t([&] {
    std::vector<std::string> header{"P(wait <= x)"};
    for (const auto& w : waits) header.push_back(w.system);
    return header;
  }());
  for (int q10 = 1; q10 <= 9; ++q10) {
    const double q = q10 / 10.0;
    std::vector<std::string> row{util::percent(q, 0)};
    for (const auto& w : waits) {
      row.push_back(util::format_duration(w.wait_cdf.quantile(q)));
    }
    t.add_row(row);
  }
  out << t.render();

  obs::Report report;
  report.harness = "fig4_waiting";
  report.figure = "Figure 4";
  for (const auto& w : waits) {
    report.set("median_wait_s." + w.system, w.wait_summary.median);
    report.set("frac_wait_under_10s." + w.system, w.frac_wait_under_10s);
    report.set("frac_wait_over_10min." + w.system, w.frac_wait_over_10min);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig4_waiting)
