// Fig 7: job failure correlated with requested resources and runtime.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig7_failure_geometry(const Args& args, std::ostream& out) {
  banner(out, "Fig 7: failure vs job geometry",
         "pass rate falls with size ONLY in DL systems (Philly/Helios); "
         "pass rate falls with runtime on EVERY system — on Mira nearly all "
         ">1-day jobs end Killed");
  const auto study = make_study(args);
  const auto fails = study.failures();
  out << analysis::render_failure_by_geometry(fails);

  obs::Report report;
  report.harness = "fig7_failure_geometry";
  report.figure = "Figure 7";
  for (const auto& f : fails) {
    report.set("pass_rate_size_trend." + f.system, f.pass_rate_size_trend);
    report.set("pass_rate_length_trend." + f.system, f.pass_rate_length_trend);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig7_failure_geometry)
