// Fig 7: job failure correlated with requested resources and runtime.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 7: failure vs job geometry",
      "pass rate falls with size ONLY in DL systems (Philly/Helios); pass "
      "rate falls with runtime on EVERY system — on Mira nearly all >1-day "
      "jobs end Killed");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_failure_by_geometry(study.failures());
  return 0;
}
