// Fig 10: submitted jobs' runtime vs queue length at submission.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 10: runtime mix vs queue length",
      "DL users submit SHORTER jobs when the system is busy; Mira/Theta/BW "
      "runtimes are essentially insensitive to queue length");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_queue_behavior_runtime(
      study.queue_behaviors());
  return 0;
}
