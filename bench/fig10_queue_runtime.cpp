// Fig 10: submitted jobs' runtime vs queue length at submission.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig10_queue_runtime(const Args& args, std::ostream& out) {
  banner(out, "Fig 10: runtime mix vs queue length",
         "DL users submit SHORTER jobs when the system is busy; "
         "Mira/Theta/BW runtimes are essentially insensitive to queue "
         "length");
  const auto study = make_study(args);
  const auto qbs = study.queue_behaviors();
  out << analysis::render_queue_behavior_runtime(qbs);

  obs::Report report;
  report.harness = "fig10_queue_runtime";
  report.figure = "Figure 10";
  for (const auto& q : qbs) {
    report.set("median_run_calm_s." + q.system, q.median_run[0]);
    report.set("median_run_congested_s." + q.system,
               q.median_run[analysis::kNumQueueBuckets - 1]);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig10_queue_runtime)
