// Unified bench runner: executes every harness in docs/FIGURES.md
// in-process and writes one BENCH_results.json (schema documented in
// DESIGN.md §Observability). Domain metrics are deterministic for a fixed
// seed; wall times and obs histograms are not and are excluded from
// --verify's same-seed comparison.
//
// Exit codes: 0 success, 1 validation/verification failure, 2 usage error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "harnesses.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

#ifndef LUMOS_GIT_REV
#define LUMOS_GIT_REV "unknown"
#endif

namespace lumos::bench {
namespace {

struct RunnerOptions {
  bool smoke = false;    ///< capped jobs, 2-day traces
  bool verify = false;   ///< run twice, require identical domain metrics
  bool list = false;     ///< print harness names and exit
  bool echo = false;     ///< forward harness table output to stdout
  std::string out = "BENCH_results.json";
  std::vector<std::string> only;  ///< empty = all harnesses
  std::optional<double> days;
  std::uint64_t seed = 42;
};

std::string runner_usage() {
  return "usage: bench_runner [--smoke] [--verify] [--echo] [--list]\n"
         "                    [--only name,name,...] [--days D] [--seed S]\n"
         "                    [--out FILE]   (FILE '-' writes to stdout)\n";
}

RunnerOptions parse_runner_args(int argc, char** argv) {
  RunnerOptions opt;
  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    LUMOS_REQUIRE(i + 1 < argc, "missing value for " + flag);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--echo") {
      opt.echo = true;
    } else if (arg == "--out") {
      opt.out = value_of(i, arg);
    } else if (arg == "--only") {
      const std::string list = value_of(i, arg);  // split views into this
      for (auto name : util::split(list, ',')) {
        opt.only.emplace_back(name);
      }
    } else if (arg == "--days") {
      opt.days = parse_positive_double(value_of(i, arg), "--days");
    } else if (arg == "--seed") {
      opt.seed = parse_u64(value_of(i, arg), "--seed");
    } else {
      throw InvalidArgument("unknown flag: " + arg);
    }
  }
  return opt;
}

bool selected(const RunnerOptions& opt, std::string_view name) {
  if (opt.only.empty()) return true;
  for (const auto& n : opt.only) {
    if (n == name) return true;
  }
  return false;
}

Args harness_args(const RunnerOptions& opt) {
  Args args;
  args.study.seed = opt.seed;
  args.study.duration_days = opt.days;
  args.smoke = opt.smoke;
  if (opt.smoke && !args.study.duration_days) {
    // Override the per-harness defaults (up to 120 days) in smoke mode.
    args.study.duration_days = 2.0;
  }
  return args;
}

/// Runs one harness with a fresh global registry; fills wall time and the
/// observability snapshot exactly like the standalone harness_main does.
obs::Report run_one(const HarnessInfo& info, const Args& args,
                    std::ostream& sink) {
  auto& registry = obs::Registry::global();
  registry.reset();
  obs::ScopedTimer timer(registry.histogram("bench.harness_seconds"));
  obs::Report report = info.run(args, sink);
  report.wall_seconds = timer.elapsed_seconds();
  timer.cancel();
  report.observability = registry.snapshot();
  return report;
}

/// Every required metric prefix must match at least one emitted key —
/// the contract documented per harness in docs/FIGURES.md.
std::vector<std::string> missing_metrics(const HarnessInfo& info,
                                         const obs::Report& report) {
  std::vector<std::string> missing;
  for (std::string_view prefix : info.required_metrics) {
    bool found = false;
    for (const auto& [key, value] : report.metrics) {
      if (std::string_view(key).substr(0, prefix.size()) == prefix) {
        found = true;
        break;
      }
    }
    if (!found) missing.emplace_back(prefix);
  }
  return missing;
}

int run(int argc, char** argv) {
  const RunnerOptions opt = parse_runner_args(argc, argv);
  if (opt.list) {
    for (const auto& info : all_harnesses()) {
      std::cout << info.name << '\t' << info.figure << '\n';
    }
    return 0;
  }

  const Args args = harness_args(opt);
  obs::Json results = obs::Json::object();
  results["schema_version"] = 1;
  results["git_rev"] = LUMOS_GIT_REV;
  results["seed"] = opt.seed;
  results["smoke"] = opt.smoke;
  if (args.study.duration_days) {
    results["days"] = *args.study.duration_days;
  }
  obs::Json harnesses = obs::Json::object();

  const auto& all = all_harnesses();
  int failures = 0;
  std::size_t index = 0;
  for (const auto& info : all) {
    ++index;
    if (!selected(opt, info.name)) continue;
    std::cout << "[" << index << "/" << all.size() << "] " << info.name
              << " ..." << std::flush;
    std::ostringstream sink;
    obs::Report report = run_one(info, args, sink);
    if (opt.echo) std::cout << '\n' << sink.str();

    std::string status = "ok";
    for (const auto& prefix : missing_metrics(info, report)) {
      status = "FAIL";
      ++failures;
      std::cout << "\n  missing required metric prefix: " << prefix;
    }
    if (opt.verify) {
      // Same seed, fresh registry: domain metrics must be bit-identical.
      const obs::Report again = run_one(info, args, sink);
      if (again.metrics != report.metrics) {
        status = "FAIL";
        ++failures;
        std::cout << "\n  non-deterministic domain metrics";
      }
    }
    std::cout << " " << util::fixed(report.wall_seconds, 2) << " s ("
              << status << ")\n";
    harnesses[std::string(info.name)] = report.to_json();
  }
  results["harnesses"] = std::move(harnesses);
  obs::write_json(results, opt.out);
  if (opt.out != "-") {
    std::cout << "wrote " << opt.out << '\n';
  }

  // Self-check: the written file must parse back and carry the documented
  // top-level keys (what the bench_smoke ctest relies on).
  if (opt.out != "-") {
    std::ifstream in(opt.out);
    std::ostringstream buf;
    buf << in.rdbuf();
    const obs::Json parsed = obs::Json::parse(buf.str());
    if (!parsed.find("schema_version") || !parsed.find("harnesses")) {
      std::cout << "self-check FAILED: written JSON lacks documented keys\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lumos::bench

int main(int argc, char** argv) {
  try {
    return lumos::bench::run(argc, argv);
  } catch (const lumos::Error& e) {
    std::cerr << "bench_runner: " << e.what() << '\n'
              << lumos::bench::runner_usage();
    return 2;
  }
}
