// Unified bench runner: executes every harness in docs/FIGURES.md and
// writes one BENCH_results.json (schema documented in DESIGN.md
// §Observability). Domain metrics are deterministic for a fixed seed;
// wall times and obs histograms are not and are excluded from --verify's
// same-seed comparison.
//
// Two execution modes:
//   in-process (default)  every harness runs in this process — fastest,
//                         but one crash discards the whole run.
//   --supervised          each harness runs as a fork/exec'd child of
//                         this same binary (internal --child mode) under
//                         lumos::supervise: per-harness deadline with
//                         SIGTERM→grace→SIGKILL escalation, bounded
//                         retry with exponential backoff, crash capture
//                         (exit code / signal, stderr tail, peak RSS),
//                         and an append-only resumable journal
//                         (BENCH_journal.jsonl) — a crash mid-fleet
//                         costs one harness, not the run. See DESIGN.md
//                         "Supervision & crash recovery".
//
// Exit codes (bench/common.hpp): 0 success, 1 harness/validation
// failure, 2 usage error, 3 runtime error, 4 injected fault.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "harnesses.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "supervise/journal.hpp"
#include "supervise/supervise.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

#ifndef LUMOS_GIT_REV
#define LUMOS_GIT_REV "unknown"
#endif

namespace lumos::bench {
namespace {

struct RunnerOptions {
  bool smoke = false;    ///< capped jobs, 2-day traces
  bool verify = false;   ///< run twice, require identical domain metrics
  bool list = false;     ///< print harness names and exit
  bool echo = false;     ///< forward harness table output to stdout
  std::string out = "BENCH_results.json";
  std::vector<std::string> only;  ///< empty = all harnesses
  std::optional<double> days;
  std::string days_text;  ///< --days as typed, forwarded verbatim to --child
  std::uint64_t seed = 42;

  // Supervision (--supervised).
  bool supervised = false;
  bool fresh = false;           ///< ignore + truncate an existing journal
  std::string journal;          ///< default: BENCH_journal.jsonl next to out
  double timeout_seconds = 900.0;  ///< per-harness wall-clock deadline
  double grace_seconds = 5.0;      ///< SIGTERM → SIGKILL window
  std::size_t attempts = 2;        ///< total attempts per harness
  double backoff_seconds = 0.5;    ///< retry backoff base (doubles, capped)

  // Internal plumbing (not in the usage text).
  std::string child;          ///< run exactly one harness, JSON on stdout
  std::string inject_fault;   ///< test hook: "harness:crash|hang|garbage"
  std::string arm_failpoint;  ///< test hook: arm a failpoint in the child
  std::string self;           ///< argv[0], for re-exec
};

std::string runner_usage() {
  return "usage: bench_runner [--smoke] [--verify] [--echo] [--list]\n"
         "                    [--only name,name,...] [--days D] [--seed S]\n"
         "                    [--out FILE]   (FILE '-' writes to stdout)\n"
         "                    [--supervised] [--fresh] [--journal FILE]\n"
         "                    [--timeout S] [--grace S] [--attempts N]\n"
         "                    [--backoff S]\n";
}

RunnerOptions parse_runner_args(int argc, char** argv) {
  RunnerOptions opt;
  opt.self = argc > 0 ? argv[0] : "bench_runner";
  auto value_of = [&](int& i, const std::string& flag) -> std::string {
    LUMOS_REQUIRE(i + 1 < argc, "missing value for " + flag);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--echo") {
      opt.echo = true;
    } else if (arg == "--out") {
      opt.out = value_of(i, arg);
    } else if (arg == "--only") {
      const std::string list = value_of(i, arg);  // split views into this
      for (auto name : util::split(list, ',')) {
        opt.only.emplace_back(name);
      }
    } else if (arg == "--days") {
      opt.days_text = value_of(i, arg);
      opt.days = parse_positive_double(opt.days_text, "--days");
    } else if (arg == "--seed") {
      opt.seed = parse_u64(value_of(i, arg), "--seed");
    } else if (arg == "--supervised") {
      opt.supervised = true;
    } else if (arg == "--fresh") {
      opt.fresh = true;
    } else if (arg == "--journal") {
      opt.journal = value_of(i, arg);
    } else if (arg == "--timeout") {
      opt.timeout_seconds = parse_positive_double(value_of(i, arg),
                                                  "--timeout");
    } else if (arg == "--grace") {
      opt.grace_seconds = parse_positive_double(value_of(i, arg), "--grace");
    } else if (arg == "--attempts") {
      opt.attempts = parse_u64(value_of(i, arg), "--attempts");
      LUMOS_REQUIRE(opt.attempts >= 1, "--attempts must be >= 1");
    } else if (arg == "--backoff") {
      opt.backoff_seconds = parse_positive_double(value_of(i, arg),
                                                  "--backoff");
    } else if (arg == "--child") {
      opt.child = value_of(i, arg);
    } else if (arg == "--inject-fault") {
      opt.inject_fault = value_of(i, arg);
    } else if (arg == "--arm-failpoint") {
      opt.arm_failpoint = value_of(i, arg);
    } else {
      throw InvalidArgument("unknown flag: " + arg);
    }
  }
  return opt;
}

bool selected(const RunnerOptions& opt, std::string_view name) {
  if (opt.only.empty()) return true;
  for (const auto& n : opt.only) {
    if (n == name) return true;
  }
  return false;
}

const HarnessInfo& find_harness(std::string_view name) {
  for (const auto& info : all_harnesses()) {
    if (info.name == name) return info;
  }
  throw InvalidArgument("unknown harness: " + std::string(name));
}

Args harness_args(const RunnerOptions& opt) {
  Args args;
  args.study.seed = opt.seed;
  args.study.duration_days = opt.days;
  args.smoke = opt.smoke;
  if (opt.smoke && !args.study.duration_days) {
    // Override the per-harness defaults (up to 120 days) in smoke mode.
    args.study.duration_days = 2.0;
  }
  return args;
}

/// Runs one harness with a fresh global registry; fills wall time and the
/// observability snapshot exactly like the standalone harness_main does.
obs::Report run_one(const HarnessInfo& info, const Args& args,
                    std::ostream& sink) {
  auto& registry = obs::Registry::global();
  // clear(), not reset(): reset keeps instrument names, so a harness that
  // never touches the simulator would still publish `sim.events: 0` etc.
  // in its section — zero-valued ghosts of whichever harness ran earlier
  // (the ext_fault_aware "sim.events: 0" bug). No harness holds handles
  // across runs, so dropping the instruments outright is safe here.
  registry.clear();
  obs::ScopedTimer timer(registry.histogram("bench.harness_seconds"));
  obs::Report report = info.run(args, sink);
  report.wall_seconds = timer.elapsed_seconds();
  timer.cancel();
  report.observability = registry.snapshot();
  return report;
}

/// Every required metric prefix must match at least one emitted key —
/// the contract documented per harness in docs/FIGURES.md.
std::vector<std::string> missing_metrics(const HarnessInfo& info,
                                         const obs::Report& report) {
  std::vector<std::string> missing;
  for (std::string_view prefix : info.required_metrics) {
    bool found = false;
    for (const auto& [key, value] : report.metrics) {
      if (std::string_view(key).substr(0, prefix.size()) == prefix) {
        found = true;
        break;
      }
    }
    if (!found) missing.emplace_back(prefix);
  }
  return missing;
}

obs::Json results_skeleton(const RunnerOptions& opt, const Args& args) {
  obs::Json results = obs::Json::object();
  results["schema_version"] = 1;
  results["git_rev"] = LUMOS_GIT_REV;
  results["seed"] = opt.seed;
  results["smoke"] = opt.smoke;
  if (args.study.duration_days) {
    results["days"] = *args.study.duration_days;
  }
  return results;
}

int finish_run(const RunnerOptions& opt, obs::Json& results,
               obs::Json harnesses, int failures) {
  results["harnesses"] = std::move(harnesses);
  obs::write_json_atomic(results, opt.out);
  if (opt.out != "-") {
    std::cout << "wrote " << opt.out << '\n';
    // Self-check: the written file must parse back and carry the
    // documented top-level keys (what the bench_smoke ctest relies on).
    std::ifstream in(opt.out);
    std::ostringstream buf;
    buf << in.rdbuf();
    const obs::Json parsed = obs::Json::parse(buf.str());
    if (!parsed.find("schema_version") || !parsed.find("harnesses")) {
      std::cout << "self-check FAILED: written JSON lacks documented keys\n";
      ++failures;
    }
  }
  return failures == 0 ? kExitOk : kExitCheckFailed;
}

// ----------------------------------------------------------- child mode --

/// Test hook: `--inject-fault harness:mode` makes the matching --child
/// process misbehave on purpose, so the supervised fleet can be fault-
/// drilled in a release build (no failpoints required).
void maybe_inject_fault(const RunnerOptions& opt) {
  if (opt.inject_fault.empty()) return;
  const std::size_t colon = opt.inject_fault.rfind(':');
  LUMOS_REQUIRE(colon != std::string::npos,
                "--inject-fault expects harness:crash|hang|garbage");
  const std::string target = opt.inject_fault.substr(0, colon);
  const std::string mode = opt.inject_fault.substr(colon + 1);
  if (target != opt.child) return;
  if (mode == "crash") {
    std::abort();
  } else if (mode == "hang") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  } else if (mode == "garbage") {
    std::cout << "{\"figure\": \"garbage\", \"metrics\": {" << std::flush;
    std::exit(kExitOk);
  } else {
    throw InvalidArgument("--inject-fault: unknown mode \"" + mode + "\"");
  }
}

/// `--child name`: run exactly one harness in-process and print its
/// report JSON (one line) on stdout — the supervised runner's unit of
/// isolation. Exit codes follow bench/common.hpp.
int run_child_mode(const RunnerOptions& opt) {
  if (!opt.arm_failpoint.empty()) {
    fault::FailpointRegistry::global().arm(opt.arm_failpoint);
  }
  const HarnessInfo& info = find_harness(opt.child);
  maybe_inject_fault(opt);
  const Args args = harness_args(opt);
  std::ostringstream sink;
  obs::Report report = run_one(info, args, sink);
  if (opt.verify) {
    // Same seed, fresh registry: domain metrics must be bit-identical.
    const obs::Report again = run_one(info, args, sink);
    if (again.metrics != report.metrics) {
      std::cerr << "bench_runner: non-deterministic domain metrics for "
                << info.name << '\n';
      return kExitRuntime;
    }
  }
  std::cout << report.to_json().dump(-1) << '\n';
  return kExitOk;
}

// ------------------------------------------------------- supervised mode --

obs::Json journal_header(const RunnerOptions& opt, const Args& args) {
  obs::Json header = obs::Json::object();
  header["schema_version"] = 1;
  header["git_rev"] = LUMOS_GIT_REV;
  header["seed"] = opt.seed;
  header["smoke"] = opt.smoke;
  if (args.study.duration_days) {
    header["days"] = *args.study.duration_days;
  }
  return header;
}

std::string journal_path(const RunnerOptions& opt) {
  if (!opt.journal.empty()) return opt.journal;
  if (opt.out == "-") return "BENCH_journal.jsonl";
  const auto dir = std::filesystem::path(opt.out).parent_path();
  return (dir / "BENCH_journal.jsonl").string();
}

/// The path this binary re-execs for --child. /proc/self/exe survives a
/// PATH-relative or cwd-relative invocation; argv[0] is the fallback.
std::string self_path(const RunnerOptions& opt) {
  std::error_code ec;
  if (std::filesystem::exists("/proc/self/exe", ec)) {
    return "/proc/self/exe";
  }
  return opt.self;
}

std::vector<std::string> child_argv(const RunnerOptions& opt,
                                    std::string_view harness) {
  std::vector<std::string> argv = {self_path(opt), "--child",
                                   std::string(harness), "--seed",
                                   std::to_string(opt.seed)};
  if (opt.days) {
    argv.push_back("--days");
    argv.push_back(opt.days_text);
  }
  if (opt.smoke) argv.push_back("--smoke");
  if (opt.verify) argv.push_back("--verify");
  if (!opt.inject_fault.empty()) {
    argv.push_back("--inject-fault");
    argv.push_back(opt.inject_fault);
  }
  if (!opt.arm_failpoint.empty()) {
    argv.push_back("--arm-failpoint");
    argv.push_back(opt.arm_failpoint);
  }
  return argv;
}

supervise::JournalRecord record_of(std::string_view harness,
                                   std::size_t attempt_index,
                                   const supervise::Attempt& attempt) {
  supervise::JournalRecord record;
  record.harness = std::string(harness);
  record.attempt = attempt_index;
  record.status = supervise::status_string(attempt);
  record.detail = attempt.detail;
  record.exit_code = attempt.child.exit_code;
  record.term_signal = attempt.child.term_signal;
  record.wall_seconds = attempt.child.wall_seconds;
  record.user_cpu_seconds = attempt.child.user_cpu_seconds;
  record.system_cpu_seconds = attempt.child.system_cpu_seconds;
  record.max_rss_kb = attempt.child.max_rss_kb;
  record.stderr_tail = attempt.child.stderr_tail;
  return record;
}

int run_supervised_fleet(const RunnerOptions& opt) {
  const Args args = harness_args(opt);
  const obs::Json header = journal_header(opt, args);
  const std::string journal_file = journal_path(opt);

  // Resume only a journal whose fingerprint matches this run exactly;
  // a different seed/window/build must start over.
  const auto contents = supervise::Journal::read(journal_file);
  obs::Json tagged_header = header;
  tagged_header["kind"] = "header";
  const bool resume = !opt.fresh && contents.header == tagged_header;
  const auto completed =
      resume ? contents.completed()
             : std::map<std::string, obs::Json>();
  supervise::Journal journal(journal_file, /*truncate=*/!resume);
  if (!resume) journal.write_header(header);
  if (resume && !completed.empty()) {
    std::cout << "resuming from " << journal_file << ": "
              << completed.size() << " harness(es) already complete\n";
  }

  obs::Json results = results_skeleton(opt, args);
  results["supervised"] = true;
  obs::Json harnesses = obs::Json::object();

  const auto& all = all_harnesses();
  int failures = 0;
  std::size_t index = 0;
  for (const auto& info : all) {
    ++index;
    if (!selected(opt, info.name)) continue;
    std::cout << "[" << index << "/" << all.size() << "] " << info.name
              << " ..." << std::flush;

    if (const auto done = completed.find(std::string(info.name));
        done != completed.end()) {
      obs::Json entry = done->second;
      entry["status"] = "skipped";
      harnesses[std::string(info.name)] = std::move(entry);
      std::cout << " skipped (journal)\n";
      continue;
    }

    supervise::Options sup;
    sup.spec.argv = child_argv(opt, info.name);
    sup.spec.deadline_seconds = opt.timeout_seconds;
    sup.spec.grace_seconds = opt.grace_seconds;
    sup.max_attempts = opt.attempts;
    sup.backoff_base_seconds = opt.backoff_seconds;

    // Exit 0 is not enough: the child's stdout must be a parsable report
    // carrying every documented metric prefix (garbage or partial JSON
    // classifies the attempt as failed).
    std::optional<obs::Json> parsed;
    sup.validate = [&](const supervise::ChildResult& child) -> std::string {
      parsed.reset();
      try {
        obs::Json doc = obs::Json::parse(child.stdout_text);
        const obs::Report report =
            obs::Report::from_json(std::string(info.name), doc);
        const auto missing = missing_metrics(info, report);
        if (!missing.empty()) {
          std::string message = "missing required metric prefixes:";
          for (const auto& prefix : missing) message += " " + prefix;
          return message;
        }
        parsed = std::move(doc);
        return "";
      } catch (const Error& e) {
        return std::string("unparsable report: ") + e.what();
      }
    };
    // Journal every attempt as it settles — a kill between harnesses
    // loses at most the in-flight line.
    sup.on_attempt = [&](const supervise::Attempt& attempt,
                         std::size_t attempt_index) {
      supervise::JournalRecord record =
          record_of(info.name, attempt_index, attempt);
      if (attempt.status == supervise::Status::Ok && parsed) {
        record.report = *parsed;
      }
      journal.append(record);
    };

    const supervise::SuperviseResult outcome = supervise::run_supervised(sup);
    const supervise::Attempt& last = outcome.final_attempt();
    const std::string status = supervise::status_string(last);

    obs::Json supervisor = obs::Json::object();
    supervisor["attempts"] =
        static_cast<std::int64_t>(outcome.attempts.size());
    supervisor["wall_seconds"] = last.child.wall_seconds;
    supervisor["max_rss_kb"] = last.child.max_rss_kb;
    supervisor["user_cpu_seconds"] = last.child.user_cpu_seconds;
    supervisor["system_cpu_seconds"] = last.child.system_cpu_seconds;

    if (outcome.ok && parsed) {
      obs::Json entry = std::move(*parsed);
      entry["status"] = status;
      entry["supervise"] = std::move(supervisor);
      harnesses[std::string(info.name)] = std::move(entry);
      std::cout << " " << util::fixed(last.child.wall_seconds, 2) << " s (ok"
                << (outcome.attempts.size() > 1
                        ? ", " + std::to_string(outcome.attempts.size()) +
                              " attempts"
                        : "")
                << ")\n";
    } else {
      ++failures;
      obs::Json entry = obs::Json::object();
      entry["figure"] = std::string(info.figure);
      entry["status"] = status;
      if (!last.detail.empty()) entry["detail"] = last.detail;
      entry["exit_code"] = last.child.exit_code;
      entry["signal"] = last.child.term_signal;
      if (!last.child.stderr_tail.empty()) {
        entry["stderr_tail"] = last.child.stderr_tail;
      }
      entry["supervise"] = std::move(supervisor);
      harnesses[std::string(info.name)] = std::move(entry);
      std::cout << " " << status << " after " << outcome.attempts.size()
                << " attempt(s)";
      if (!last.detail.empty()) std::cout << " — " << last.detail;
      std::cout << '\n';
    }
  }
  return finish_run(opt, results, std::move(harnesses), failures);
}

// ------------------------------------------------------- in-process mode --

int run_in_process(const RunnerOptions& opt) {
  const Args args = harness_args(opt);
  obs::Json results = results_skeleton(opt, args);
  obs::Json harnesses = obs::Json::object();

  const auto& all = all_harnesses();
  int failures = 0;
  std::size_t index = 0;
  for (const auto& info : all) {
    ++index;
    if (!selected(opt, info.name)) continue;
    std::cout << "[" << index << "/" << all.size() << "] " << info.name
              << " ..." << std::flush;
    std::ostringstream sink;
    obs::Report report = run_one(info, args, sink);
    if (opt.echo) std::cout << '\n' << sink.str();

    std::string status = "ok";
    for (const auto& prefix : missing_metrics(info, report)) {
      status = "FAIL";
      ++failures;
      std::cout << "\n  missing required metric prefix: " << prefix;
    }
    if (opt.verify) {
      // Same seed, fresh registry: domain metrics must be bit-identical.
      const obs::Report again = run_one(info, args, sink);
      if (again.metrics != report.metrics) {
        status = "FAIL";
        ++failures;
        std::cout << "\n  non-deterministic domain metrics";
      }
    }
    std::cout << " " << util::fixed(report.wall_seconds, 2) << " s ("
              << status << ")\n";
    harnesses[std::string(info.name)] = report.to_json();
  }
  return finish_run(opt, results, std::move(harnesses), failures);
}

int run(int argc, char** argv) {
  const RunnerOptions opt = parse_runner_args(argc, argv);
  if (opt.list) {
    for (const auto& info : all_harnesses()) {
      std::cout << info.name << '\t' << info.figure << '\n';
    }
    return kExitOk;
  }
  if (!opt.child.empty()) return run_child_mode(opt);
  if (opt.supervised) return run_supervised_fleet(opt);
  return run_in_process(opt);
}

}  // namespace
}  // namespace lumos::bench

int main(int argc, char** argv) {
  lumos::bench::ignore_sigpipe();
  try {
    return lumos::bench::run(argc, argv);
  } catch (const lumos::InvalidArgument& e) {
    std::cerr << "bench_runner: " << e.what() << '\n'
              << lumos::bench::runner_usage();
    return lumos::bench::kExitUsage;
  } catch (const std::exception&) {
    return lumos::bench::map_bench_exception("bench_runner");
  }
}
