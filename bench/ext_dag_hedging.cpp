// Extension harness: DAG workflows with straggler hedging (DESIGN.md §4h).
//
// Ablation grid over one synthetic layered-workflow trace:
//   tail   x  faults  x  policy        x  hedging
//   none      off        FCFS             off
//   heavy     on         critical-path    on
// publishing makespan, p99 workflow slowdown, hedge launch/win/cancel
// counts, and the wasted-vs-goodput core-hour split. The acceptance
// property is checked in-process: under heavy-tail injection (faults
// off), hedging must reduce the p99 workflow slowdown for every policy —
// the harness throws otherwise, so the suite fails loudly rather than
// publishing a regression.
#include <algorithm>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "harnesses.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "synth/dag.hpp"
#include "trace/dag.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace lumos::bench {

namespace {

/// Per-workflow ideal spans: the critical path over straggler-free
/// runtimes — the denominator of workflow slowdown, independent of
/// scheduling, hedging, or injected tail.
struct WorkflowIdeal {
  std::vector<double> submit;  ///< earliest task submit per workflow
  std::vector<double> ideal;   ///< critical-path seconds per workflow
};

WorkflowIdeal workflow_ideals(const trace::Trace& trace,
                              std::size_t workflows) {
  const auto jobs = trace.jobs();
  std::vector<double> base(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    base[i] = jobs[i].hedge_run_time > 0.0 ? jobs[i].hedge_run_time
                                           : jobs[i].run_time;
  }
  const trace::DagIndex index = trace::build_dag_index(trace, base);
  WorkflowIdeal w;
  w.submit.assign(workflows, std::numeric_limits<double>::infinity());
  w.ideal.assign(workflows, 0.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::uint32_t wf = jobs[i].user;
    w.submit[wf] = std::min(w.submit[wf], jobs[i].submit_time);
    w.ideal[wf] = std::max(w.ideal[wf], index.critical_path[i]);
  }
  return w;
}

struct WorkflowSummary {
  double p99_slowdown = 0.0;
  std::size_t incomplete = 0;  ///< workflows with a never-finished task
};

WorkflowSummary summarize_workflows(const trace::Trace& trace,
                                    const sim::SimResult& result,
                                    const WorkflowIdeal& ideal) {
  const auto jobs = trace.jobs();
  const std::size_t workflows = ideal.ideal.size();
  std::vector<double> finish(workflows, 0.0);
  std::vector<std::uint8_t> complete(workflows, 1);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::uint32_t wf = jobs[i].user;
    const double f = result.outcomes[i].finish_time;
    if (f < 0.0) {
      complete[wf] = 0;
    } else {
      finish[wf] = std::max(finish[wf], f);
    }
  }
  WorkflowSummary s;
  std::vector<double> slowdowns;
  slowdowns.reserve(workflows);
  for (std::size_t w = 0; w < workflows; ++w) {
    if (complete[w] == 0) {
      ++s.incomplete;
      continue;
    }
    const double span = finish[w] - ideal.submit[w];
    slowdowns.push_back(span / std::max(ideal.ideal[w], 1.0));
  }
  if (!slowdowns.empty()) {
    s.p99_slowdown = stats::quantile(slowdowns, 0.99);
  }
  return s;
}

}  // namespace

obs::Report run_ext_dag_hedging(const Args& args, std::ostream& out) {
  banner(out, "Extension: DAG workflows with straggler hedging",
         "heavy-tail stragglers inflate p99 workflow slowdown; hedged "
         "duplicates claw most of it back for a bounded wasted-core-hour "
         "cost, and critical-path priority compounds the gain");

  obs::Report report;
  report.harness = "ext_dag_hedging";
  report.figure = "Extension: DAG hedging";

  synth::DagWorkloadOptions gen;
  gen.seed = args.study.seed;
  gen.workflows = args.smoke ? 24 : 160;
  const trace::Trace base_trace = synth::generate_dag_workload(gen);

  synth::HeavyTailOptions tail;
  tail.seed = args.study.seed + 1;

  struct TailPoint {
    const char* label;
    bool inject;
  };
  const TailPoint tails[] = {{"none", false}, {"heavy", true}};

  fault::FaultConfig faulty;
  faulty.node_mtbf_s = 4.0 * 3600.0;
  faulty.node_mttr_s = 1800.0;
  faulty.retry_backoff_s = 120.0;
  faulty.seed = args.study.seed;

  sim::HedgeConfig hedged;
  hedged.threshold = 1.25;
  hedged.min_planned_s = 60.0;

  util::TextTable t({"Tail", "Faults", "Policy", "Hedging", "p99 slowdown",
                     "makespan (h)", "launched", "won", "cancelled",
                     "wasted core-h", "goodput share"});
  // p99 by [tail][policy][hedge] for the fault-free acceptance check.
  double p99[2][2][2] = {};

  for (int ti = 0; ti < 2; ++ti) {
    const trace::Trace trace =
        tails[ti].inject ? synth::inject_heavy_tail(base_trace, tail)
                         : base_trace;
    const WorkflowIdeal ideal = workflow_ideals(trace, gen.workflows);
    for (const bool faults_on : {false, true}) {
      for (int pi = 0; pi < 2; ++pi) {
        const auto policy =
            pi == 0 ? sim::PolicyKind::Fcfs : sim::PolicyKind::CriticalPath;
        for (int hi = 0; hi < 2; ++hi) {
          sim::SimConfig config;
          config.policy = policy;
          if (faults_on) config.fault = faulty;
          if (hi == 1) config.hedge = hedged;
          const auto result = sim::simulate(trace, config);
          const WorkflowSummary s = summarize_workflows(trace, result, ideal);
          if (!faults_on) p99[ti][pi][hi] = s.p99_slowdown;

          const double goodput = result.goodput_core_hours;
          const double wasted = result.wasted_core_hours;
          const double share =
              goodput + wasted > 0.0 ? goodput / (goodput + wasted) : 1.0;
          const std::string key = std::string(tails[ti].label) + "." +
                                  (faults_on ? "faults" : "nofault") + "." +
                                  (pi == 0 ? "fcfs" : "cp") + "." +
                                  (hi == 0 ? "base" : "hedge");
          report.set("p99_slowdown." + key, s.p99_slowdown);
          report.set("makespan_s." + key, result.makespan);
          report.set("hedges.launched." + key,
                     static_cast<double>(result.counters.hedges_launched));
          report.set("hedges.won." + key,
                     static_cast<double>(result.counters.hedges_won));
          report.set("hedges.cancelled." + key,
                     static_cast<double>(result.counters.hedges_cancelled));
          report.set("wasted_core_hours." + key, wasted);
          report.set("goodput_core_hours." + key, goodput);
          report.set("events_cancelled." + key,
                     static_cast<double>(result.counters.events_cancelled));
          report.set("incomplete_workflows." + key,
                     static_cast<double>(s.incomplete));
          t.add_row({tails[ti].label, faults_on ? "on" : "off",
                     std::string(to_string(policy)), hi == 0 ? "off" : "on",
                     util::fixed(s.p99_slowdown, 3),
                     util::fixed(result.makespan / 3600.0, 2),
                     std::to_string(result.counters.hedges_launched),
                     std::to_string(result.counters.hedges_won),
                     std::to_string(result.counters.hedges_cancelled),
                     util::fixed(wasted, 1), util::fixed(share, 4)});
        }
      }
    }
  }
  out << t.render();

  // Acceptance: under heavy-tail injection (faults off), hedging must not
  // worsen the p99 workflow slowdown, for either policy.
  for (int pi = 0; pi < 2; ++pi) {
    const char* policy = pi == 0 ? "FCFS" : "CP";
    if (p99[1][pi][1] > p99[1][pi][0]) {
      throw Error("ext_dag_hedging: hedging worsened heavy-tail p99 "
                  "workflow slowdown under " +
                  std::string(policy) + " (" +
                  util::fixed(p99[1][pi][1], 3) + " > " +
                  util::fixed(p99[1][pi][0], 3) + ")");
    }
  }
  out << "acceptance: hedging reduced heavy-tail p99 slowdown ("
      << util::fixed(p99[1][0][0], 3) << " -> "
      << util::fixed(p99[1][0][1], 3) << " FCFS, "
      << util::fixed(p99[1][1][0], 3) << " -> "
      << util::fixed(p99[1][1][1], 3) << " CP)\n";
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_dag_hedging)
