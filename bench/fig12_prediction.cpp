// Fig 12: job runtime prediction with vs without elapsed time — five
// models x three elapsed thresholds, per system.
#include <iostream>

#include "common.hpp"
#include "predict/harness.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    // Default to one DL and one HPC trace (the contrast the paper draws).
    args.study.systems = {"Philly", "Mira"};
  }
  lumos::bench::banner(
      "Fig 12: runtime prediction with/without elapsed time",
      "adding elapsed time cuts the Underestimate Rate sharply for every "
      "model (monotone in the elapsed fraction) with comparable or better "
      "Average Accuracy");

  const auto study = lumos::bench::make_study(args);
  for (const auto& trace : study.traces()) {
    lumos::predict::StudyConfig config;
    config.max_jobs = 12000;
    const auto result = lumos::predict::run_prediction_study(trace, config);
    std::cout << "\nSystem " << result.system
              << " (avg runtime " << lumos::util::fixed(result.avg_runtime_s, 0)
              << " s):\n";
    lumos::util::TextTable t({"model", "elapsed", "underest base",
                              "underest +elapsed", "accuracy base",
                              "accuracy +elapsed", "test jobs"});
    for (auto model : config.models) {
      for (double frac : config.elapsed_fractions) {
        const auto& base = result.row(model, false, frac);
        const auto& with = result.row(model, true, frac);
        t.add_row({lumos::predict::to_string(model),
                   lumos::util::format("avg/%.0f", 1.0 / frac),
                   lumos::util::percent(base.underestimate_rate),
                   lumos::util::percent(with.underestimate_rate),
                   lumos::util::percent(base.accuracy),
                   lumos::util::percent(with.accuracy),
                   std::to_string(base.test_jobs)});
      }
    }
    std::cout << t.render();
  }

  if (args.ablation) {
    // DESIGN.md §4.3: how much of the win comes from the elapsed feature
    // vs the survival clamp, on the first system with XGBoost + LR.
    std::cout << "\nAblation: elapsed-time integration (first system):\n";
    lumos::util::TextTable t({"mode", "model", "elapsed", "underest",
                              "accuracy"});
    const auto& trace = study.traces().front();
    for (auto mode : {lumos::predict::ElapsedMode::FeatureAndClamp,
                      lumos::predict::ElapsedMode::FeatureOnly,
                      lumos::predict::ElapsedMode::ClampOnly}) {
      lumos::predict::StudyConfig config;
      config.max_jobs = 8000;
      config.models = {lumos::predict::ModelKind::Xgboost,
                       lumos::predict::ModelKind::LinearReg};
      config.elapsed_mode = mode;
      const auto result = lumos::predict::run_prediction_study(trace, config);
      for (auto model : config.models) {
        for (double frac : config.elapsed_fractions) {
          const auto& with = result.row(model, true, frac);
          t.add_row({std::string(to_string(mode)),
                     lumos::predict::to_string(model),
                     lumos::util::format("avg/%.0f", 1.0 / frac),
                     lumos::util::percent(with.underestimate_rate),
                     lumos::util::percent(with.accuracy)});
        }
      }
    }
    std::cout << t.render();
  }
  return 0;
}
