// Fig 12: job runtime prediction with vs without elapsed time — five
// models x three elapsed thresholds, per system.
#include <cmath>
#include <ostream>

#include "common.hpp"
#include "harnesses.hpp"
#include "predict/harness.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_fig12_prediction(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    // Default to one DL and one HPC trace (the contrast the paper draws).
    args.study.systems = {"Philly", "Mira"};
  }
  banner(out, "Fig 12: runtime prediction with/without elapsed time",
         "adding elapsed time cuts the Underestimate Rate sharply for every "
         "model (monotone in the elapsed fraction) with comparable or "
         "better Average Accuracy");

  obs::Report report;
  report.harness = "fig12_prediction";
  report.figure = "Figure 12";

  const auto study = make_study(args);
  for (const auto& trace : study.traces()) {
    predict::StudyConfig config;
    config.max_jobs = args.jobs_cap(12000, 2000);
    const auto result = predict::run_prediction_study(trace, config);
    out << "\nSystem " << result.system << " (avg runtime "
        << util::fixed(result.avg_runtime_s, 0) << " s):\n";
    util::TextTable t({"model", "elapsed", "underest base",
                       "underest +elapsed", "accuracy base",
                       "accuracy +elapsed", "test jobs"});
    for (auto model : config.models) {
      for (double frac : config.elapsed_fractions) {
        const auto& base = result.row(model, false, frac);
        const auto& with = result.row(model, true, frac);
        t.add_row({predict::to_string(model),
                   util::format("avg/%.0f", 1.0 / frac),
                   util::percent(base.underestimate_rate),
                   util::percent(with.underestimate_rate),
                   util::percent(base.accuracy), util::percent(with.accuracy),
                   std::to_string(base.test_jobs)});
      }
    }
    out << t.render();

    // Domain metrics: means over models at the largest elapsed fraction.
    const double frac = config.elapsed_fractions.back();
    double ub = 0.0, ue = 0.0, ab = 0.0, ae = 0.0;
    std::size_t n = 0;
    for (const auto& row : result.rows) {
      if (std::fabs(row.elapsed_fraction - frac) > 1e-9) continue;
      if (row.with_elapsed) {
        ue += row.underestimate_rate;
        ae += row.accuracy;
      } else {
        ub += row.underestimate_rate;
        ab += row.accuracy;
        ++n;
      }
    }
    if (n > 0) {
      const double dn = static_cast<double>(n);
      report.set("underestimate_base." + result.system, ub / dn);
      report.set("underestimate_elapsed." + result.system, ue / dn);
      report.set("accuracy_base." + result.system, ab / dn);
      report.set("accuracy_elapsed." + result.system, ae / dn);
    }
  }

  if (args.ablation) {
    // DESIGN.md §4.3: how much of the win comes from the elapsed feature
    // vs the survival clamp, on the first system with XGBoost + LR.
    out << "\nAblation: elapsed-time integration (first system):\n";
    util::TextTable t({"mode", "model", "elapsed", "underest", "accuracy"});
    const auto& trace = study.traces().front();
    for (auto mode : {predict::ElapsedMode::FeatureAndClamp,
                      predict::ElapsedMode::FeatureOnly,
                      predict::ElapsedMode::ClampOnly}) {
      predict::StudyConfig config;
      config.max_jobs = args.jobs_cap(8000, 2000);
      config.models = {predict::ModelKind::Xgboost,
                       predict::ModelKind::LinearReg};
      config.elapsed_mode = mode;
      const auto result = predict::run_prediction_study(trace, config);
      for (auto model : config.models) {
        for (double frac : config.elapsed_fractions) {
          const auto& with = result.row(model, true, frac);
          t.add_row({std::string(to_string(mode)), predict::to_string(model),
                     util::format("avg/%.0f", 1.0 / frac),
                     util::percent(with.underestimate_rate),
                     util::percent(with.accuracy)});
        }
      }
    }
    out << t.render();
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig12_prediction)
