// google-benchmark micro benchmarks: simulator event throughput and
// workload-generation speed.
#include <benchmark/benchmark.h>

#include "core/lumos.hpp"

namespace {

lumos::trace::Trace make_trace(const char* system, double days) {
  lumos::synth::GeneratorOptions options;
  options.duration_days = days;
  return lumos::synth::generate_system(system, options);
}

void BM_GenerateWorkload(benchmark::State& state) {
  const double days = static_cast<double>(state.range(0));
  std::size_t jobs = 0;
  for (auto _ : state) {
    const auto trace = make_trace("BlueWaters", days);
    jobs = trace.size();
    benchmark::DoNotOptimize(trace.jobs().data());
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}
BENCHMARK(BM_GenerateWorkload)->Arg(2)->Arg(7)->Unit(benchmark::kMillisecond);

// Reports the event loop's SimCounters alongside throughput: events/sec is
// the headline number, sorts and profile (re)builds explain where passes
// spent their time.
void report_sim_counters(benchmark::State& state,
                         const lumos::sim::SimResult& result,
                         std::size_t jobs) {
  const auto& c = result.counters;
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(c.events) *
                             static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["sorts"] = static_cast<double>(c.sort_invocations);
  state.counters["profile_rebuilds"] =
      static_cast<double>(c.profile_rebuilds);
  state.counters["profile_cache_hits"] =
      static_cast<double>(c.profile_cache_hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}

void BM_SimulateEasy(benchmark::State& state) {
  const auto trace = make_trace("Theta", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.backfill.kind = lumos::sim::BackfillKind::Easy;
  lumos::sim::SimResult result;
  for (auto _ : state) {
    result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  report_sim_counters(state, result, trace.size());
}
BENCHMARK(BM_SimulateEasy)->Arg(7)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_SimulateEventQueue(benchmark::State& state) {
  // Calendar-vs-heap event-queue backends on the same workload: range(1)
  // selects the backend, so a single report shows the bucket queue's edge
  // (both produce bit-identical SimResults — sim_test asserts that).
  const auto trace = make_trace("Theta", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.backfill.kind = lumos::sim::BackfillKind::Easy;
  config.event_queue = state.range(1) == 0
                           ? lumos::sim::EventQueueKind::Heap
                           : lumos::sim::EventQueueKind::Calendar;
  state.SetLabel(std::string(to_string(config.event_queue)));
  lumos::sim::SimResult result;
  for (auto _ : state) {
    result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  report_sim_counters(state, result, trace.size());
}
BENCHMARK(BM_SimulateEventQueue)
    ->Args({30, 0})
    ->Args({30, 1})
    ->Args({120, 0})
    ->Args({120, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SimulateSweepShards(benchmark::State& state) {
  // End-to-end sharded sweep: 8 (policy, backfill) points over one trace,
  // range(0) worker threads. Speedup over the threads=1 row is the
  // number ext_sweep_scaling gates on.
  const auto trace = make_trace("Theta", 30.0);
  std::vector<lumos::trace::Trace> traces;
  traces.push_back(trace);
  std::vector<lumos::sim::SweepPoint> points;
  for (auto policy :
       {lumos::sim::PolicyKind::Fcfs, lumos::sim::PolicyKind::Sjf}) {
    for (auto kind : {lumos::sim::BackfillKind::None,
                      lumos::sim::BackfillKind::Easy,
                      lumos::sim::BackfillKind::Conservative,
                      lumos::sim::BackfillKind::AdaptiveRelaxed}) {
      lumos::sim::SweepPoint point;
      point.config.policy = policy;
      point.config.backfill.kind = kind;
      points.push_back(point);
    }
  }
  lumos::sim::SweepOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto outcome = lumos::sim::sweep_shards(traces, points, options);
    benchmark::DoNotOptimize(outcome.shards.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(trace.size() * points.size()) *
      state.iterations());
}
BENCHMARK(BM_SimulateSweepShards)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateAdaptive(benchmark::State& state) {
  const auto trace = make_trace("Theta", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.backfill.kind = lumos::sim::BackfillKind::AdaptiveRelaxed;
  lumos::sim::SimResult result;
  for (auto _ : state) {
    result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  report_sim_counters(state, result, trace.size());
}
BENCHMARK(BM_SimulateAdaptive)->Arg(7)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateConservative(benchmark::State& state) {
  // Conservative backfilling re-plans the whole queue every pass — the
  // heaviest consumer of the availability-profile cache.
  const auto trace = make_trace("Theta", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.backfill.kind = lumos::sim::BackfillKind::Conservative;
  lumos::sim::SimResult result;
  for (auto _ : state) {
    result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  report_sim_counters(state, result, trace.size());
}
BENCHMARK(BM_SimulateConservative)->Arg(30)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateSjfSorted(benchmark::State& state) {
  // Non-FCFS policy: exercises the dirty-flag incremental queue sort.
  const auto trace = make_trace("Philly", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.policy = lumos::sim::PolicyKind::Sjf;
  config.backfill.kind = lumos::sim::BackfillKind::Easy;
  lumos::sim::SimResult result;
  for (auto _ : state) {
    result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  report_sim_counters(state, result, trace.size());
}
BENCHMARK(BM_SimulateSjfSorted)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_QueueLengthSweep(benchmark::State& state) {
  const auto trace = make_trace("Philly", 7.0);
  for (auto _ : state) {
    const auto q = lumos::analysis::queue_length_at_submit(trace);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_QueueLengthSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
