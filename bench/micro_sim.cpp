// google-benchmark micro benchmarks: simulator event throughput and
// workload-generation speed.
#include <benchmark/benchmark.h>

#include "core/lumos.hpp"

namespace {

lumos::trace::Trace make_trace(const char* system, double days) {
  lumos::synth::GeneratorOptions options;
  options.duration_days = days;
  return lumos::synth::generate_system(system, options);
}

void BM_GenerateWorkload(benchmark::State& state) {
  const double days = static_cast<double>(state.range(0));
  std::size_t jobs = 0;
  for (auto _ : state) {
    const auto trace = make_trace("BlueWaters", days);
    jobs = trace.size();
    benchmark::DoNotOptimize(trace.jobs().data());
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}
BENCHMARK(BM_GenerateWorkload)->Arg(2)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_SimulateEasy(benchmark::State& state) {
  const auto trace = make_trace("Theta", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.backfill.kind = lumos::sim::BackfillKind::Easy;
  for (auto _ : state) {
    const auto result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  state.counters["jobs"] = static_cast<double>(trace.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_SimulateEasy)->Arg(7)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_SimulateAdaptive(benchmark::State& state) {
  const auto trace = make_trace("Theta", static_cast<double>(state.range(0)));
  lumos::sim::SimConfig config;
  config.backfill.kind = lumos::sim::BackfillKind::AdaptiveRelaxed;
  for (auto _ : state) {
    const auto result = lumos::sim::simulate(trace, config);
    benchmark::DoNotOptimize(result.outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_SimulateAdaptive)->Arg(7)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_QueueLengthSweep(benchmark::State& state) {
  const auto trace = make_trace("Philly", 7.0);
  for (auto _ : state) {
    const auto q = lumos::analysis::queue_length_at_submit(trace);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(trace.size()) *
                          state.iterations());
}
BENCHMARK(BM_QueueLengthSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
