// Extension harness: the Lublin-Feitelson'03 model (the paper's ref [25])
// side by side with the paper-calibrated generators — which modern
// workload shapes does the classic model miss?
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "synth/lublin.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    args.study.systems = {"Theta", "Helios"};
  }
  if (!args.study.duration_days) args.study.duration_days = 10.0;
  lumos::bench::banner(
      "Extension: Lublin-Feitelson'03 baseline vs calibrated generators",
      "the classic model approximates an HPC system's geometry but cannot "
      "produce DL shapes: no 1-GPU dominance, no sub-minute median "
      "runtimes, no burst arrivals, no failure states — the staleness the "
      "paper's cross-system analysis demonstrates");

  const auto study = lumos::bench::make_study(args);
  std::vector<lumos::analysis::GeometryResult> geo;
  std::vector<lumos::analysis::ArrivalResult> arr;
  for (const auto& trace : study.traces()) {
    geo.push_back(lumos::analysis::analyze_geometry(trace));
    arr.push_back(lumos::analysis::analyze_arrivals(trace));
  }
  for (const auto& trace : study.traces()) {
    lumos::synth::LublinOptions options;
    options.spec = trace.spec();
    options.spec.name = "Lublin(" + trace.spec().name + ")";
    options.duration_days = args.days_or(10.0);
    const auto lublin = lumos::synth::generate_lublin(options);
    geo.push_back(lumos::analysis::analyze_geometry(lublin));
    arr.push_back(lumos::analysis::analyze_arrivals(lublin));
  }
  std::cout << "--- geometry ---\n"
            << lumos::analysis::render_geometry(geo) << '\n'
            << "--- arrivals ---\n"
            << lumos::analysis::render_arrivals(arr);
  return 0;
}
