// Extension harness: the Lublin-Feitelson'03 model (the paper's ref [25])
// side by side with the paper-calibrated generators — which modern
// workload shapes does the classic model miss?
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"
#include "synth/lublin.hpp"

namespace lumos::bench {

obs::Report run_ext_lublin_baseline(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    args.study.systems = {"Theta", "Helios"};
  }
  if (!args.study.duration_days) args.study.duration_days = 10.0;
  banner(out, "Extension: Lublin-Feitelson'03 baseline vs calibrated "
              "generators",
         "the classic model approximates an HPC system's geometry but "
         "cannot produce DL shapes: no 1-GPU dominance, no sub-minute "
         "median runtimes, no burst arrivals, no failure states — the "
         "staleness the paper's cross-system analysis demonstrates");

  const auto study = make_study(args);
  std::vector<analysis::GeometryResult> geo;
  std::vector<analysis::ArrivalResult> arr;
  for (const auto& trace : study.traces()) {
    geo.push_back(analysis::analyze_geometry(trace));
    arr.push_back(analysis::analyze_arrivals(trace));
  }
  for (const auto& trace : study.traces()) {
    synth::LublinOptions options;
    options.spec = trace.spec();
    options.spec.name = "Lublin(" + trace.spec().name + ")";
    options.duration_days = args.days_or(10.0);
    const auto lublin = synth::generate_lublin(options);
    geo.push_back(analysis::analyze_geometry(lublin));
    arr.push_back(analysis::analyze_arrivals(lublin));
  }
  out << "--- geometry ---\n"
      << analysis::render_geometry(geo) << '\n'
      << "--- arrivals ---\n"
      << analysis::render_arrivals(arr);

  obs::Report report;
  report.harness = "ext_lublin_baseline";
  report.figure = "Extension: Lublin'03 baseline";
  for (const auto& g : geo) {
    report.set("median_runtime_s." + g.system, g.runtime_summary.median);
  }
  for (const auto& a : arr) {
    report.set("peak_hour_ratio." + a.system, a.peak_ratio);
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_lublin_baseline)
