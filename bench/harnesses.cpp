// The harness registry behind bench_runner, plus in-process single-shot
// versions of the two google-benchmark micro suites (those binaries own
// their main and measure iterations; the runner wants one deterministic
// pass with domain counters instead).
#include <algorithm>
#include <cstdint>
#include <ostream>

#include "common.hpp"
#include "harnesses.hpp"
#include "obs/registry.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "predict/features.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/table.hpp"

namespace lumos::bench {

obs::Report run_micro_sim(const Args& args, std::ostream& out) {
  banner(out, "Micro: simulator event-loop throughput (single-shot)",
         "events scale with jobs; conservative backfilling does the most "
         "profile work, EASY the least (micro_sim runs the iterated "
         "google-benchmark version of this)");

  obs::Report report;
  report.harness = "micro_sim";
  report.figure = "Micro-benchmark: simulator";

  synth::GeneratorOptions options;
  options.seed = args.study.seed;
  options.duration_days = args.days_or(7.0);
  const auto trace = synth::generate_system("Theta", options);

  util::TextTable t({"backfill", "events", "backfilled", "sorts",
                     "profile rebuilds"});
  for (auto kind : {sim::BackfillKind::Easy, sim::BackfillKind::Conservative,
                    sim::BackfillKind::AdaptiveRelaxed}) {
    sim::SimConfig config;
    config.backfill.kind = kind;
    const auto result = sim::simulate(trace, config);
    const std::string key(to_string(kind));
    report.set("events." + key,
               static_cast<double>(result.counters.events));
    report.set("backfilled." + key,
               static_cast<double>(result.backfilled_jobs));
    t.add_row({key, std::to_string(result.counters.events),
               std::to_string(result.backfilled_jobs),
               std::to_string(result.counters.sort_invocations),
               std::to_string(result.counters.profile_rebuilds)});
  }
  out << "Theta, " << trace.size() << " jobs:\n" << t.render();

  // Throughput measurement for the bench:perf regression gate. The repeat
  // count is deterministic (sized from the trace so smoke runs process
  // ~50k jobs and are not noise-dominated); the timed loop publishes into
  // a private registry so the global counters above keep their
  // single-run values. Rates land in GAUGES — deliberately outside the
  // deterministic `metrics` section that --verify compares.
  const std::size_t repeats = std::max<std::size_t>(
      1, 50000 / std::max<std::size_t>(std::size_t{1}, trace.size()));
  obs::Registry scratch;
  std::uint64_t events = 0;
  auto& registry = obs::Registry::global();
  obs::ScopedTimer timer(registry.histogram("micro.sim_wall_seconds"));
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    sim::SimConfig config;
    config.backfill.kind = sim::BackfillKind::Easy;
    events += sim::simulate(trace, config, scratch).counters.events;
  }
  const double seconds = timer.elapsed_seconds();
  const double jobs_done = static_cast<double>(trace.size()) *
                           static_cast<double>(repeats);
  registry.gauge("sim.jobs_per_sec")
      .set(seconds > 0.0 ? jobs_done / seconds : 0.0);
  registry.gauge("sim.events_per_sec")
      .set(seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0);
  registry.gauge("sim.throughput_repeats")
      .set(static_cast<double>(repeats));
  out << "throughput: " << repeats << " EASY repeats, "
      << static_cast<std::uint64_t>(jobs_done) << " jobs in "
      << util::fixed(seconds, 3) << " s ("
      << static_cast<std::uint64_t>(seconds > 0.0 ? jobs_done / seconds : 0.0)
      << " jobs/s)\n";
  return report;
}

obs::Report run_micro_ml(const Args& args, std::ostream& out) {
  banner(out, "Micro: prediction-model fit/predict timings (single-shot)",
         "linear regression fits orders of magnitude faster than GBRT; "
         "timings land in the obs histograms (micro_ml runs the iterated "
         "google-benchmark version of this)");

  obs::Report report;
  report.harness = "micro_ml";
  report.figure = "Micro-benchmark: prediction models";

  synth::GeneratorOptions options;
  options.seed = args.study.seed;
  options.duration_days = args.days_or(7.0);
  options.max_jobs = args.jobs_cap(8000, 2000);
  const auto trace = synth::generate_system("Philly", options);
  const auto feats = predict::extract_features(trace);
  const auto data = predict::build_dataset(feats, {});
  report.set("dataset_rows", static_cast<double>(data.size()));
  report.set("dataset_features", static_cast<double>(data.dims()));

  auto& registry = obs::Registry::global();
  {
    obs::ScopedTimer timer(registry.histogram("micro.fit_seconds.linear"));
    ml::LinearRegression model;
    model.fit(data);
    report.set("linear_weights",
               static_cast<double>(model.weights().size()));
  }
  {
    obs::ScopedTimer timer(registry.histogram("micro.fit_seconds.gbrt"));
    ml::GbrtOptions gbrt_options;
    gbrt_options.n_trees = 30;
    ml::GradientBoosting model(gbrt_options);
    model.fit(data);
    report.set("gbrt_trees", static_cast<double>(model.tree_count()));
  }
  out << "Philly dataset: " << data.size() << " rows x " << data.dims()
      << " features; fit timings recorded in micro.fit_seconds.*\n";
  return report;
}

const std::vector<HarnessInfo>& all_harnesses() {
  static const std::vector<HarnessInfo> kHarnesses = {
      {"table1_traces", "Table 1", run_table1_traces, {"jobs.", "users."}},
      {"fig1_geometries", "Figure 1", run_fig1_geometries,
       {"median_runtime_s.", "peak_hour_ratio."}},
      {"fig2_corehours", "Figure 2", run_fig2_corehours,
       {"dominant_size_share.", "dominant_length_share."}},
      {"fig3_utilization", "Figure 3", run_fig3_utilization,
       {"avg_utilization."}},
      {"fig4_waiting", "Figure 4", run_fig4_waiting, {"median_wait_s."}},
      {"fig5_wait_geometry", "Figure 5", run_fig5_wait_geometry,
       {"mean_wait_long_s."}},
      {"fig6_status", "Figure 6", run_fig6_status,
       {"passed_job_share.", "passed_corehour_share."}},
      {"fig7_failure_geometry", "Figure 7", run_fig7_failure_geometry,
       {"pass_rate_size_trend."}},
      {"fig8_user_repetition", "Figure 8", run_fig8_user_repetition,
       {"top3_share.", "top10_share."}},
      {"fig9_queue_resources", "Figure 9", run_fig9_queue_resources,
       {"mean_cores_calm."}},
      {"fig10_queue_runtime", "Figure 10", run_fig10_queue_runtime,
       {"median_run_calm_s."}},
      {"fig11_user_status", "Figure 11", run_fig11_user_status,
       {"failed_vs_passed_median."}},
      {"fig12_prediction", "Figure 12", run_fig12_prediction,
       {"underestimate_base.", "underestimate_elapsed.", "accuracy_base."}},
      {"table2_adaptive_backfill", "Table 2", run_table2_adaptive_backfill,
       {"wait_improvement.", "violation_reduction."}},
      {"ext_prediction_backfill", "Extension", run_ext_prediction_backfill,
       {"wait_s.", "killed_by_underestimate."}},
      {"ext_status_prediction", "Extension", run_ext_status_prediction,
       {"accuracy_gain.", "doomed_rate."}},
      {"ext_fragmentation", "Extension", run_ext_fragmentation,
       {"wait_penalty.", "util_drop."}},
      {"ext_fault_aware", "Extension", run_ext_fault_aware,
       {"waste_recall.", "precision."}},
      {"ext_lublin_baseline", "Extension", run_ext_lublin_baseline,
       {"median_runtime_s.", "peak_hour_ratio."}},
      {"ext_node_failures", "Extension", run_ext_node_failures,
       {"goodput_share.", "wasted_core_hours."}},
      {"ext_dag_hedging", "Extension", run_ext_dag_hedging,
       {"p99_slowdown.", "hedges."}},
      {"ext_sweep_scaling", "Extension", run_ext_sweep_scaling,
       {"wait_s.", "sweep."}},
      {"ext_stream_ingest", "Extension", run_ext_stream_ingest,
       {"rank_err.", "stream."}},
      {"ext_serve_chaos", "Extension", run_ext_serve_chaos, {"chaos."}},
      {"micro_sim", "Micro", run_micro_sim, {"events.", "backfilled."}},
      {"micro_ml", "Micro", run_micro_ml,
       {"dataset_rows", "dataset_features"}},
  };
  return kHarnesses;
}

}  // namespace lumos::bench
