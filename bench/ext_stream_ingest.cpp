// Extension harness: streaming ingest (stream::OnlineCharacterizer).
//
// The sketch-vs-exact accuracy gate and the throughput benchmark of the
// streaming "lumos-served" mode (DESIGN.md "Streaming mode"):
//   1. generates a synthetic trace, ingests it one job event at a time,
//      and checks every quantile the sketches answer against the exact
//      stats::Ecdf — the observed rank error must stay within the
//      configured epsilon() bound and the histogram's value error within
//      its relative_error() (throws InternalError otherwise);
//   2. re-ingests the stream sharded over a ThreadPool and merges in
//      shard order, checking the exact parts (counts, diurnal profile,
//      inter-arrival moments, histogram) are identical to serial ingest
//      and the merged sketch stays within epsilon — the merge
//      associativity contract behind Registry::merge-style composition;
//   3. times repeated serial ingest rounds and publishes the perf-gated
//      gauges: stream.events_per_sec and stream.peak_rss_mb.
// Deterministic metrics carry the observed error maxima and the identity
// verdicts; rates and RSS are gauges.
#include <algorithm>
#include <cmath>
#include <future>
#include <ostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "harnesses.hpp"
#include "obs/registry.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stream/ingest.hpp"
#include "stream/online.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lumos::bench {

namespace {

constexpr std::size_t kShards = 8;

/// Observed normalized rank error of `value` against the exact sorted
/// sample at target quantile q: 0 when q lies inside [F(value-),
/// F(value)] (ties make F jump; any rank in the jump is exact),
/// otherwise the distance to the nearer edge.
double rank_error(const std::vector<double>& sorted, double value,
                  double q) {
  const double n = static_cast<double>(sorted.size());
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
  const double f_below = static_cast<double>(lo - sorted.begin()) / n;
  const double f_at = static_cast<double>(hi - sorted.begin()) / n;
  if (q >= f_below && q <= f_at) return 0.0;
  return q < f_below ? f_below - q : q - f_at;
}

/// Max observed rank error of a sketch over a dense quantile grid.
double max_rank_error(const stats::QuantileSketch& sketch,
                      std::vector<double> sample) {
  std::sort(sample.begin(), sample.end());
  double worst = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double q = static_cast<double>(i) / 1000.0;
    worst = std::max(worst,
                     rank_error(sample, sketch.quantile(q), q));
  }
  return worst;
}

/// Max observed relative value error of the histogram over the grid.
/// The DDSketch guarantee is against the order statistic at position
/// floor(q * (n - 1)) — NOT the interpolated type-7 value, which can sit
/// between two arbitrarily distant sample values and admits no relative
/// bound. Targets below the zero-bucket threshold are skipped.
double max_value_error(const stats::StreamingHistogram& hist,
                       std::vector<double> sample, double min_value) {
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double worst = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double q = static_cast<double>(i) / 1000.0;
    const auto idx =
        static_cast<std::size_t>(std::floor(q * (n - 1.0)));
    const double exact = sample[std::min(idx, sample.size() - 1)];
    if (exact < min_value) continue;
    worst = std::max(worst, std::abs(hist.quantile(q) - exact) / exact);
  }
  return worst;
}

}  // namespace

obs::Report run_ext_stream_ingest(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) args.study.systems = {"Theta"};
  banner(out, "Extension: streaming ingest (stream::OnlineCharacterizer)",
         "one-pass sketches answer the paper's characterization queries "
         "within proven error bounds, in bounded memory, and sharded "
         "ingest merges back to the serial answer");

  obs::Report report;
  report.harness = "ext_stream_ingest";
  report.figure = "Extension: streaming characterization";

  synth::GeneratorOptions gen;
  gen.seed = args.study.seed;
  gen.duration_days = args.days_or(14.0);
  const trace::Trace trace =
      synth::generate_system(args.study.systems.front(), gen);
  const auto& jobs = trace.jobs();
  if (jobs.empty()) throw InternalError("generated trace is empty");

  stream::StreamConfig config;
  config.epoch_unix = trace.spec().epoch_unix;
  config.utc_offset_hours = trace.spec().utc_offset_hours;

  // --- serial ingest + exact reference ------------------------------
  stream::OnlineCharacterizer serial(config);
  std::vector<double> runtimes, waits, gaps;
  runtimes.reserve(jobs.size());
  waits.reserve(jobs.size());
  gaps.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    serial.ingest(jobs[i]);
    runtimes.push_back(jobs[i].run_time);
    waits.push_back(jobs[i].wait_time);
    if (i > 0) {
      gaps.push_back(
          std::max(0.0, jobs[i].submit_time - jobs[i - 1].submit_time));
    }
  }

  const double eps = serial.runtime_sketch().epsilon();
  const double runtime_err = max_rank_error(serial.runtime_sketch(), runtimes);
  const double wait_err = max_rank_error(serial.wait_sketch(), waits);
  const double gap_err = max_rank_error(serial.interarrival_sketch(), gaps);
  const double hist_err =
      max_value_error(serial.runtime_histogram(), runtimes, 1e-9);
  const double hist_bound = serial.runtime_histogram().relative_error();
  report.set("rank_err.runtime", runtime_err);
  report.set("rank_err.wait", wait_err);
  report.set("rank_err.interarrival", gap_err);
  report.set("rank_err.bound", eps);
  report.set("rank_err.histogram_value", hist_err);
  report.set("rank_err.histogram_bound", hist_bound);
  if (runtime_err > eps || wait_err > eps || gap_err > eps) {
    throw InternalError("sketch rank error exceeds the epsilon bound");
  }
  if (hist_err > hist_bound) {
    throw InternalError("histogram value error exceeds relative_error");
  }

  // --- sharded ingest + index-ordered merge -------------------------
  util::ThreadPool pool(kShards);
  std::vector<stream::OnlineCharacterizer> shards;
  shards.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) shards.emplace_back(config);
  {
    std::vector<std::future<void>> futures;
    futures.reserve(kShards);
    const std::size_t per = (jobs.size() + kShards - 1) / kShards;
    for (std::size_t s = 0; s < kShards; ++s) {
      futures.push_back(pool.submit([&, s] {
        const std::size_t begin = s * per;
        const std::size_t end = std::min(jobs.size(), begin + per);
        for (std::size_t i = begin; i < end; ++i) {
          shards[s].ingest(jobs[i]);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  stream::OnlineCharacterizer merged(config);
  for (const auto& shard : shards) merged.merge(shard);

  const bool counts_same = merged.jobs() == serial.jobs();
  const bool hourly_same = merged.hourly() == serial.hourly();
  const bool moments_same =
      merged.interarrival_gaps() == serial.interarrival_gaps() &&
      std::abs(merged.interarrival_cv() - serial.interarrival_cv()) < 1e-9;
  const double merged_err = max_rank_error(merged.runtime_sketch(), runtimes);
  const double merged_hist_err =
      max_value_error(merged.runtime_histogram(), runtimes, 1e-9);
  report.set("stream.sharded_counts_identical", counts_same ? 1.0 : 0.0);
  report.set("stream.sharded_hourly_identical", hourly_same ? 1.0 : 0.0);
  report.set("stream.sharded_moments_identical", moments_same ? 1.0 : 0.0);
  report.set("rank_err.runtime_merged", merged_err);
  report.set("rank_err.histogram_value_merged", merged_hist_err);
  if (!counts_same || !hourly_same || !moments_same) {
    throw InternalError("sharded ingest diverged from serial ingest");
  }
  if (merged_err > eps || merged_hist_err > hist_bound) {
    throw InternalError("merged sketch error exceeds its bound");
  }

  // --- characterization metrics (deterministic) ---------------------
  serial.publish(report, "stream.");

  // --- throughput: repeated timed serial rounds ---------------------
  const std::size_t rounds = std::max<std::size_t>(
      1, args.jobs_cap(500000, 20000) / jobs.size());
  auto& registry = obs::Registry::global();
  double ingest_seconds = 0.0;
  {
    obs::ScopedTimer timer(registry.histogram("stream.ingest_seconds"));
    for (std::size_t r = 0; r < rounds; ++r) {
      stream::OnlineCharacterizer scratch(config);
      for (const auto& job : jobs) scratch.ingest(job);
    }
    ingest_seconds = timer.elapsed_seconds();
  }
  const double total_events =
      static_cast<double>(jobs.size()) * static_cast<double>(rounds);
  registry.gauge("stream.events_per_sec")
      .set(ingest_seconds > 0.0 ? total_events / ingest_seconds : 0.0);
  registry.gauge("stream.peak_rss_mb").set(stream::peak_rss_mb());
  registry.gauge("stream.rounds").set(static_cast<double>(rounds));
  registry.counter("stream.events")
      .add(static_cast<std::uint64_t>(total_events));

  util::TextTable t({"quantity", "observed", "bound"});
  t.add_row({"runtime rank err", util::fixed(runtime_err, 5),
             util::fixed(eps, 5)});
  t.add_row({"wait rank err", util::fixed(wait_err, 5),
             util::fixed(eps, 5)});
  t.add_row({"interarrival rank err", util::fixed(gap_err, 5),
             util::fixed(eps, 5)});
  t.add_row({"merged rank err", util::fixed(merged_err, 5),
             util::fixed(eps, 5)});
  t.add_row({"histogram value err", util::fixed(hist_err, 5),
             util::fixed(hist_bound, 5)});
  out << t.render();
  out << jobs.size() << " jobs, retained " << serial.retained_items()
      << " items across sketches (" << kShards
      << "-way sharded merge identical), ingest "
      << util::fixed(total_events / std::max(ingest_seconds, 1e-9), 0)
      << " events/s over " << rounds << " rounds\n";
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_stream_ingest)
