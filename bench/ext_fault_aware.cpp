// Extension harness: fault-aware job management (Takeaway 7) — how many of
// the core-hours burned by doomed jobs a doom-probability monitor could
// recover, against how much useful work it would destroy.
#include <ostream>

#include "common.hpp"
#include "core/fault_aware_study.hpp"
#include "harnesses.hpp"
#include "util/string_util.hpp"

namespace lumos::bench {

obs::Report run_ext_fault_aware(const Args& args_in, std::ostream& out) {
  Args args = args_in;
  if (args.study.systems.empty()) {
    args.study.systems = {"Philly", "Mira"};
  }
  if (!args.study.duration_days) args.study.duration_days = 20.0;
  banner(out, "Extension: fault-aware termination of doomed jobs",
         "killed/failed jobs burn a large share of core-hours (Fig 6); a "
         "monitor that stops jobs whose predicted doom probability crosses "
         "a threshold recovers part of that waste, trading off collateral "
         "kills of healthy jobs as the threshold drops");

  obs::Report report;
  report.harness = "ext_fault_aware";
  report.figure = "Extension: fault-aware management";

  const auto study = make_study(args);
  for (const auto& trace : study.traces()) {
    core::FaultAwareConfig config;
    config.max_jobs = args.jobs_cap(config.max_jobs, 4000);
    const auto result = core::run_fault_aware_study(trace, config);
    out << core::render_fault_aware_study(result) << '\n';
    for (const auto& row : result.rows) {
      const std::string key = result.system + "." +
                              util::format("%.0f", row.threshold * 100.0);
      report.set("waste_recall." + key, row.waste_recall);
      report.set("precision." + key, row.precision);
    }
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_ext_fault_aware)
