// Extension harness: fault-aware job management (Takeaway 7) — how many of
// the core-hours burned by doomed jobs a doom-probability monitor could
// recover, against how much useful work it would destroy.
#include <iostream>

#include "common.hpp"
#include "core/fault_aware_study.hpp"

int main(int argc, char** argv) {
  auto args = lumos::bench::parse_args(argc, argv);
  if (args.study.systems.empty()) {
    args.study.systems = {"Philly", "Mira"};
  }
  if (!args.study.duration_days) args.study.duration_days = 20.0;
  lumos::bench::banner(
      "Extension: fault-aware termination of doomed jobs",
      "killed/failed jobs burn a large share of core-hours (Fig 6); a "
      "monitor that stops jobs whose predicted doom probability crosses a "
      "threshold recovers part of that waste, trading off collateral "
      "kills of healthy jobs as the threshold drops");

  const auto study = lumos::bench::make_study(args);
  for (const auto& trace : study.traces()) {
    const auto result = lumos::core::run_fault_aware_study(trace);
    std::cout << lumos::core::render_fault_aware_study(result) << '\n';
  }
  return 0;
}
