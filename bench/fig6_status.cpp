// Fig 6: distribution of job statuses — counts vs consumed core hours.
#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  const auto args = lumos::bench::parse_args(argc, argv);
  lumos::bench::banner(
      "Fig 6: job status distribution (counts % vs core-hours %)",
      "Passed <70% everywhere; Killed jobs consume disproportionately MORE "
      "core-hours than their count (Philly: ~60% passed jobs use only ~34% "
      "of GPU hours); Failed jobs consume LESS (fail early)");
  const auto study = lumos::bench::make_study(args);
  std::cout << lumos::analysis::render_status_distribution(study.failures());
  return 0;
}
