// Fig 6: distribution of job statuses — counts vs consumed core hours.
#include <ostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "harnesses.hpp"

namespace lumos::bench {

obs::Report run_fig6_status(const Args& args, std::ostream& out) {
  banner(out, "Fig 6: job status distribution (counts % vs core-hours %)",
         "Passed <70% everywhere; Killed jobs consume disproportionately "
         "MORE core-hours than their count (Philly: ~60% passed jobs use "
         "only ~34% of GPU hours); Failed jobs consume LESS (fail early)");
  const auto study = make_study(args);
  const auto fails = study.failures();
  out << analysis::render_status_distribution(fails);

  obs::Report report;
  report.harness = "fig6_status";
  report.figure = "Figure 6";
  for (const auto& f : fails) {
    report.set("passed_job_share." + f.system,
               f.overall.job_fraction(trace::JobStatus::Passed));
    report.set("passed_corehour_share." + f.system,
               f.overall.core_hour_fraction(trace::JobStatus::Passed));
  }
  return report;
}

}  // namespace lumos::bench

LUMOS_BENCH_MAIN(lumos::bench::run_fig6_status)
