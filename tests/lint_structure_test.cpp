// Structural lumos_lint passes on fixture trees: layer DAG parsing,
// include-graph analysis (cycles, inversions, .cpp includes), the
// LUMOS_HOT_PATH body scanner, and the baseline ratchet.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/baseline.hpp"
#include "lint/hotpath.hpp"
#include "lint/lint.hpp"
#include "lint/structure.hpp"
#include "util/error.hpp"

namespace lint = lumos::lint;

namespace {

std::vector<lint::SourceFile> tree(
    std::initializer_list<std::pair<const char*, const char*>> files) {
  std::vector<lint::SourceFile> out;
  for (const auto& [path, content] : files) out.push_back({path, content});
  return out;
}

int count_rule(const std::vector<lint::Diagnostic>& diags,
               std::string_view rule) {
  int n = 0;
  for (const auto& d : diags) n += d.rule == rule ? 1 : 0;
  return n;
}

// ------------------------------------------------------- parse_layers --

TEST(ParseLayers, AcceptsCommentsBlanksAndDeps) {
  const auto spec = lint::parse_layers(
      "# comment\n"
      "\n"
      "util:\n"
      "trace: util   # trailing comment\n"
      "sim: util trace\n");
  EXPECT_TRUE(spec.knows("util"));
  EXPECT_TRUE(spec.knows("sim"));
  EXPECT_FALSE(spec.knows("obs"));
  EXPECT_EQ(spec.allowed.at("sim"),
            (std::set<std::string>{"util", "trace"}));
  EXPECT_TRUE(spec.allowed.at("util").empty());
}

TEST(ParseLayers, RejectsMalformedLine) {
  EXPECT_THROW((void)lint::parse_layers("util\n"), lumos::InvalidArgument);
}

TEST(ParseLayers, RejectsUndeclaredDep) {
  EXPECT_THROW((void)lint::parse_layers("sim: util\n"),
               lumos::InvalidArgument);
}

TEST(ParseLayers, RejectsSelfDep) {
  EXPECT_THROW((void)lint::parse_layers("sim: sim\n"),
               lumos::InvalidArgument);
}

TEST(ParseLayers, RejectsDuplicateModule) {
  EXPECT_THROW((void)lint::parse_layers("util:\nutil:\n"),
               lumos::InvalidArgument);
}

TEST(ParseLayers, RejectsCyclicDeclaredGraph) {
  EXPECT_THROW((void)lint::parse_layers("a: b\nb: a\n"),
               lumos::InvalidArgument);
}

// ---------------------------------------------------- check_structure --

TEST(CheckStructure, CleanTreeHasNoFindings) {
  const auto spec = lint::parse_layers("util:\nsim: util\n");
  const auto diags = lint::check_structure(
      tree({{"util/rng.hpp", "#pragma once\n"},
            {"sim/engine.hpp", "#pragma once\n#include \"util/rng.hpp\"\n"}}),
      spec);
  EXPECT_TRUE(diags.empty());
}

TEST(CheckStructure, ReportsIncludeCycleOnceAtSmallestMember) {
  const auto spec = lint::parse_layers("sim: \n");
  const auto diags = lint::check_structure(
      tree({{"sim/a.hpp", "#include \"sim/b.hpp\"\n"},
            {"sim/b.hpp", "#include \"sim/c.hpp\"\n"},
            {"sim/c.hpp", "#include \"sim/a.hpp\"\n"}}),
      spec);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-cycle");
  EXPECT_EQ(diags[0].file, "sim/a.hpp");
  EXPECT_EQ(diags[0].line, 1);
  // The message carries the full chain, closing back on the anchor.
  EXPECT_NE(diags[0].message.find("sim/a.hpp -> sim/b.hpp -> sim/c.hpp -> "
                                  "sim/a.hpp"),
            std::string::npos);
}

TEST(CheckStructure, SelfIncludeIsACycle) {
  const auto spec = lint::parse_layers("sim: \n");
  const auto diags = lint::check_structure(
      tree({{"sim/a.hpp", "#include \"sim/a.hpp\"\n"}}), spec);
  ASSERT_EQ(count_rule(diags, "include-cycle"), 1);
}

TEST(CheckStructure, ReportsLayerInversion) {
  const auto spec = lint::parse_layers("util:\nsim: util\n");
  const auto diags = lint::check_structure(
      tree({{"util/rng.hpp", "#include \"sim/engine.hpp\"\n"},
            {"sim/engine.hpp", "#pragma once\n"}}),
      spec);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layer-inversion");
  EXPECT_EQ(diags[0].file, "util/rng.hpp");
  EXPECT_NE(diags[0].message.find("'util' may not include 'sim'"),
            std::string::npos);
}

TEST(CheckStructure, ReportsIncludeOfTranslationUnit) {
  const auto spec = lint::parse_layers("sim: \n");
  const auto diags = lint::check_structure(
      tree({{"sim/a.cpp", "#include \"sim/b.cpp\"\n"},
            {"sim/b.cpp", "int x;\n"}}),
      spec);
  EXPECT_EQ(count_rule(diags, "include-cpp"), 1);
}

TEST(CheckStructure, ReportsUnknownModuleBothDirections) {
  const auto spec = lint::parse_layers("util:\n");
  // mystery/ is in the scanned set but not declared: flagged both as the
  // includer and as the included module.
  const auto diags = lint::check_structure(
      tree({{"util/a.hpp", "#include \"mystery/m.hpp\"\n"},
            {"mystery/m.hpp", "#include \"util/a.hpp\"\n"}}),
      spec);
  EXPECT_EQ(count_rule(diags, "layer-unknown-module"), 2);
}

TEST(CheckStructure, IgnoresThirdPartyQuotedIncludes) {
  const auto spec = lint::parse_layers("util:\n");
  const auto diags = lint::check_structure(
      tree({{"util/a.hpp", "#include \"gtest/gtest.h\"\n"}}), spec);
  EXPECT_TRUE(diags.empty());
}

TEST(CheckStructure, HonoursInlineSuppression) {
  const auto spec = lint::parse_layers("util:\nsim: util\n");
  const auto diags = lint::check_structure(
      tree({{"util/rng.hpp",
             "// lumos-lint: allow(layer-inversion) transitional, see #42\n"
             "#include \"sim/engine.hpp\"\n"},
            {"sim/engine.hpp", "#pragma once\n"}}),
      spec);
  EXPECT_EQ(count_rule(diags, "layer-inversion"), 0);
}

// ---------------------------------------------------- check_hot_paths --

TEST(HotPath, FlagsAllSixRules) {
  const auto diags = lint::check_hot_paths("sim/hot.cpp",
                                           R"(LUMOS_HOT_PATH void spin() {
  auto* p = new int[8];
  std::map<int, int> m;
  std::mutex mu;
  std::cout << 1;
  throw 1;
  std::regex re("x");
})");
  EXPECT_EQ(count_rule(diags, "hot-alloc"), 1);
  EXPECT_EQ(count_rule(diags, "hot-node-container"), 1);
  EXPECT_EQ(count_rule(diags, "hot-mutex"), 1);
  EXPECT_EQ(count_rule(diags, "hot-stream"), 1);
  EXPECT_EQ(count_rule(diags, "hot-throw"), 1);
  EXPECT_EQ(count_rule(diags, "hot-regex"), 1);
}

TEST(HotPath, UnmarkedFunctionIsNotScanned) {
  const auto diags = lint::check_hot_paths(
      "sim/cold.cpp", "void setup() { auto* p = new int[8]; (void)p; }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(HotPath, BodyEndsAtMatchingBrace) {
  // The allocation after the marked body must not be attributed to it.
  const auto diags = lint::check_hot_paths("sim/hot.cpp",
                                           R"(LUMOS_HOT_PATH void hot() {
  if (true) { int x = 0; (void)x; }
  for (;;) { break; }
}
void cold() { auto* p = new int[8]; (void)p; })");
  EXPECT_TRUE(diags.empty());
}

TEST(HotPath, LambdaInsideBodyIsScanned) {
  const auto diags = lint::check_hot_paths("sim/hot.cpp",
                                           R"(LUMOS_HOT_PATH void hot() {
  auto fn = [&](int n) { return new int[n]; };
  (void)fn;
})");
  EXPECT_EQ(count_rule(diags, "hot-alloc"), 1);
}

TEST(HotPath, BracesInParametersDoNotConfuseBodyStart) {
  // Default argument with a braced init sits inside parens; the body is
  // still found and the allocation inside it is flagged.
  const auto diags = lint::check_hot_paths("sim/hot.cpp",
                                           R"(LUMOS_HOT_PATH int hot(std::pair<int,int> p = {1, 2}) {
  return *new int(p.first);
})");
  EXPECT_EQ(count_rule(diags, "hot-alloc"), 1);
}

TEST(HotPath, SuppressionWithReasonRemovesFinding) {
  const auto diags = lint::check_hot_paths("sim/hot.cpp",
                                           R"(LUMOS_HOT_PATH void hot() {
  // lumos-lint: allow(hot-throw) invariant guard, never on happy path
  if (false) throw 1;
})");
  EXPECT_EQ(count_rule(diags, "hot-throw"), 0);
  EXPECT_TRUE(diags.empty());
}

TEST(HotPath, ReasonlessSuppressionIsItselfAFinding) {
  const auto diags = lint::check_hot_paths("sim/hot.cpp",
                                           R"(LUMOS_HOT_PATH void hot() {
  // lumos-lint: allow(hot-throw)
  if (false) throw 1;
})");
  EXPECT_EQ(count_rule(diags, "hot-throw"), 1);
  EXPECT_EQ(count_rule(diags, "lint-suppression"), 1);
}

TEST(HotPath, MarkerOnDeclarationIsMisuse) {
  const auto diags = lint::check_hot_paths(
      "sim/hot.hpp", "LUMOS_HOT_PATH void hot();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hot-path-misuse");
}

TEST(HotPath, MarkerInCommentOrStringIgnored) {
  const auto diags = lint::check_hot_paths(
      "sim/doc.cpp",
      "// LUMOS_HOT_PATH void fake() { new int; }\n"
      "const char* s = \"LUMOS_HOT_PATH void fake2() { new int; }\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(HotPath, DefinitionSiteIsExempt) {
  const auto diags = lint::check_hot_paths(
      "util/annotations.hpp",
      "LUMOS_HOT_PATH void would_fail() { throw 1; }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(HotPath, DiagnosticNamesTheFunction) {
  const auto diags = lint::check_hot_paths(
      "sim/hot.cpp", "LUMOS_HOT_PATH void spin_once() { throw 1; }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("(in spin_once)"), std::string::npos);
}

// --------------------------------------------- check_signal_handlers --

TEST(SignalHandler, CleanAtomicStoreBodyPasses) {
  // The only thing a handler may do: store into a lock-free atomic.
  const auto diags = lint::check_signal_handlers(
      "util/signal_util.cpp",
      R"(LUMOS_SIGNAL_HANDLER void on_signal(int sig) {
  g_shutdown_signal.store(sig, std::memory_order_relaxed);
})");
  EXPECT_TRUE(diags.empty());
}

TEST(SignalHandler, FlagsEveryAsyncUnsafeOperation) {
  const auto diags = lint::check_signal_handlers(
      "util/signal_util.cpp",
      R"(LUMOS_SIGNAL_HANDLER void on_signal(int sig) {
  auto* p = new int(sig);
  std::lock_guard<std::mutex> lock(mu);
  std::cout << sig;
  throw 1;
})");
  EXPECT_EQ(count_rule(diags, "signal-alloc"), 1);
  EXPECT_EQ(count_rule(diags, "signal-mutex"), 1);
  EXPECT_EQ(count_rule(diags, "signal-stream"), 1);
  EXPECT_EQ(count_rule(diags, "signal-throw"), 1);
}

TEST(SignalHandler, LoggingMacrosAndPrintfAreStreams) {
  // The logging macros expand to stream writes (malloc + locks under the
  // hood); printf takes the async-signal-unsafe stdio lock.
  const auto diags = lint::check_signal_handlers(
      "util/signal_util.cpp",
      R"(LUMOS_SIGNAL_HANDLER void on_signal(int sig) {
  LUMOS_WARN("got %d", sig);
  printf("got %d\n", sig);
})");
  EXPECT_EQ(count_rule(diags, "signal-stream"), 2);
}

TEST(SignalHandler, MarkerOnDeclarationIsMisuse) {
  const auto diags = lint::check_signal_handlers(
      "util/signal_util.hpp", "LUMOS_SIGNAL_HANDLER void on_signal(int);\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "signal-handler-misuse");
}

TEST(SignalHandler, UnmarkedFunctionIsNotScanned) {
  const auto diags = lint::check_signal_handlers(
      "stream/ingest.cpp",
      "void emit() { std::cout << new int[8]; throw 1; }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(SignalHandler, DefinitionSiteIsExempt) {
  const auto diags = lint::check_signal_handlers(
      "util/annotations.hpp",
      "LUMOS_SIGNAL_HANDLER void would_fail() { throw 1; }\n");
  EXPECT_TRUE(diags.empty());
}

// ----------------------------------------------------------- baseline --

TEST(Baseline, JsonRoundTrip) {
  std::vector<lint::Diagnostic> diags = {
      {"sim/a.cpp", 10, "hot-alloc", "m"},
      {"sim/a.cpp", 20, "hot-alloc", "m"},
      {"util/b.hpp", 5, "layer-inversion", "m"},
  };
  const auto baseline = lint::baseline_from(diags);
  const auto parsed = lint::baseline_from_json(lint::to_json(baseline));
  EXPECT_EQ(parsed.pinned, baseline.pinned);
  EXPECT_EQ(parsed.pinned.at({"sim/a.cpp", "hot-alloc"}), 2);
}

TEST(Baseline, RejectsMalformedDocuments) {
  EXPECT_THROW((void)lint::baseline_from_json("{}"), lumos::InvalidArgument);
  EXPECT_THROW(
      (void)lint::baseline_from_json(R"({"schema_version": 2, "pinned": []})"),
      lumos::InvalidArgument);
  EXPECT_THROW((void)lint::baseline_from_json(
                   R"({"schema_version": 1,
                       "pinned": [{"file": "a", "rule": "r", "count": 0}]})"),
               lumos::InvalidArgument);
}

TEST(Ratchet, FreshFindingsFailPinnedOnesPass) {
  std::vector<lint::Diagnostic> old_diags = {
      {"sim/a.cpp", 10, "hot-alloc", "m"}};
  const auto baseline = lint::baseline_from(old_diags);

  // Same findings → clean.
  auto result = lint::ratchet(old_diags, baseline);
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.pinned.size(), 1u);

  // One more finding of the pinned (file, rule) → exactly one fresh.
  std::vector<lint::Diagnostic> more = {
      {"sim/a.cpp", 10, "hot-alloc", "m"},
      {"sim/a.cpp", 99, "hot-alloc", "m"},
  };
  result = lint::ratchet(more, baseline);
  EXPECT_FALSE(result.clean());
  ASSERT_EQ(result.fresh.size(), 1u);
  EXPECT_EQ(result.fresh[0].line, 99);  // the later finding is the fresh one

  // A different rule in the same file is fresh even though the file is
  // mentioned in the baseline.
  std::vector<lint::Diagnostic> other_rule = {
      {"sim/a.cpp", 10, "hot-throw", "m"}};
  result = lint::ratchet(other_rule, baseline);
  EXPECT_EQ(result.fresh.size(), 1u);
}

TEST(Ratchet, FixedFindingsReportStalePins) {
  std::vector<lint::Diagnostic> old_diags = {
      {"sim/a.cpp", 10, "hot-alloc", "m"},
      {"sim/a.cpp", 20, "hot-alloc", "m"}};
  const auto baseline = lint::baseline_from(old_diags);
  const auto result = lint::ratchet({}, baseline);
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.stale.size(), 1u);
  EXPECT_EQ(result.stale[0], (std::pair<std::string, std::string>{
                                 "sim/a.cpp", "hot-alloc"}));
}

TEST(Ratchet, EmptyBaselineFailsEverything) {
  std::vector<lint::Diagnostic> diags = {{"sim/a.cpp", 1, "hot-alloc", "m"}};
  const auto result = lint::ratchet(diags, lint::Baseline{});
  EXPECT_EQ(result.fresh.size(), 1u);
  EXPECT_TRUE(result.pinned.empty());
}

// One end-to-end composition: structural findings feed the ratchet the
// same way the lumos_lint driver wires them.
TEST(Ratchet, StructuralFindingsRoundTripThroughBaseline) {
  const auto spec = lint::parse_layers("util:\nsim: util\n");
  const auto files =
      tree({{"util/rng.hpp", "#include \"sim/engine.hpp\"\n"},
            {"sim/engine.hpp", "#pragma once\n"}});
  const auto diags = lint::check_structure(files, spec);
  ASSERT_EQ(diags.size(), 1u);

  const auto baseline = lint::baseline_from(diags);
  EXPECT_TRUE(lint::ratchet(diags, baseline).clean());
  const auto parsed = lint::baseline_from_json(lint::to_json(baseline));
  EXPECT_TRUE(lint::ratchet(diags, parsed).clean());
}

}  // namespace
