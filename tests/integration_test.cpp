// End-to-end integration tests: the cross-system shapes the paper reports,
// verified on multi-day synthetic workloads of all five systems.
//
// These are the repository's acceptance tests — each assertion corresponds
// to a claim in DESIGN.md §3's "expected shapes to hold".
#include <gtest/gtest.h>

#include <cmath>

#include "core/backfill_study.hpp"
#include "core/study.hpp"
#include "core/takeaways.hpp"
#include "trace/csv_formats.hpp"
#include "trace/swf.hpp"
#include "trace/validate.hpp"

#include <sstream>

namespace lumos {
namespace {

/// Shared study over a window long enough for stable statistics but short
/// enough for CI (built once for the whole suite).
const core::CrossSystemStudy& study() {
  static const core::CrossSystemStudy* s = [] {
    core::StudyOptions options;
    options.seed = 42;
    options.duration_days = 10.0;
    return new core::CrossSystemStudy(options);
  }();
  return *s;
}

template <typename T>
const T& sys(const std::vector<T>& results, std::string_view name) {
  for (const auto& r : results) {
    if (r.system == name) return r;
  }
  throw std::runtime_error("missing system in results");
}

TEST(Integration, AllTracesValidate) {
  for (const auto& t : study().traces()) {
    const auto report = trace::validate(t);
    EXPECT_TRUE(report.consistent())
        << t.spec().name << "\n" << report.to_string();
    EXPECT_GT(t.size(), 100u) << t.spec().name;
  }
}

// ------------------------------------------------------------- Fig 1 ----

TEST(Integration, Fig1RuntimeOrdering) {
  const auto geo = study().geometries();
  const auto& bw = sys(geo, "BlueWaters");
  const auto& mira = sys(geo, "Mira");
  const auto& philly = sys(geo, "Philly");
  const auto& helios = sys(geo, "Helios");
  EXPECT_GT(bw.runtime_summary.median, 2000.0);
  EXPECT_GT(mira.runtime_summary.median, 2000.0);
  EXPECT_LT(philly.runtime_summary.median, 2000.0);
  EXPECT_LT(helios.runtime_summary.median, 300.0);
}

TEST(Integration, Fig1ArrivalOrdering) {
  const auto arr = study().arrivals();
  // DL/hybrid gaps are ~10x shorter than HPC gaps.
  EXPECT_LT(sys(arr, "Philly").interarrival_summary.median, 15.0);
  EXPECT_LT(sys(arr, "Helios").interarrival_summary.median, 15.0);
  EXPECT_LT(sys(arr, "BlueWaters").interarrival_summary.median, 30.0);
  EXPECT_GT(sys(arr, "Mira").interarrival_summary.median, 40.0);
  EXPECT_GT(sys(arr, "Theta").interarrival_summary.median, 40.0);
}

TEST(Integration, Fig1HourlyPatterns) {
  const auto arr = study().arrivals();
  // Helios strongly diurnal; Philly comparatively flat and inverted.
  EXPECT_GT(sys(arr, "Helios").peak_ratio,
            2.0 * sys(arr, "Philly").peak_ratio);
  EXPECT_GT(sys(arr, "BlueWaters").business_hours_share, 0.45);
  EXPECT_LT(sys(arr, "Philly").business_hours_share, 0.45);
}

TEST(Integration, Fig1SizeShapes) {
  const auto geo = study().geometries();
  EXPECT_GT(sys(geo, "Philly").frac_single_core, 0.6);
  EXPECT_GT(sys(geo, "Helios").frac_single_core, 0.6);
  EXPECT_GT(sys(geo, "Mira").frac_over_1000, 0.45);
  EXPECT_GT(sys(geo, "BlueWaters").frac_over_10, 0.85);
}

// ------------------------------------------------------------- Fig 2 ----

TEST(Integration, Fig2CoreHourDomination) {
  const auto dom = study().dominations();
  EXPECT_GT(sys(dom, "BlueWaters")
                .by_size.core_hour_fraction(trace::SizeCategory::Small),
            0.7);
  EXPECT_LT(sys(dom, "Helios")
                .by_size.core_hour_fraction(trace::SizeCategory::Small),
            0.25);
  // HPC dominated by middle-length, DL by long jobs.
  EXPECT_EQ(sys(dom, "Mira").dominant_length, trace::LengthCategory::Middle);
  EXPECT_EQ(sys(dom, "Theta").dominant_length, trace::LengthCategory::Middle);
  EXPECT_EQ(sys(dom, "Philly").dominant_length, trace::LengthCategory::Long);
  EXPECT_EQ(sys(dom, "Helios").dominant_length, trace::LengthCategory::Long);
}

// ------------------------------------------------------------- Fig 3 ----

TEST(Integration, Fig3UtilizationOrdering) {
  const auto utils = study().utilizations();
  const double philly = sys(utils, "Philly").average;
  const double helios = sys(utils, "Helios").average;
  const double mira = sys(utils, "Mira").average;
  const double theta = sys(utils, "Theta").average;
  EXPECT_LT(philly, helios);
  EXPECT_LT(helios, std::min(mira, theta));
  EXPECT_GT(mira, 0.6);
  // Philly reports per-VC utilization (fragmentation evidence).
  EXPECT_EQ(sys(utils, "Philly").per_vc_average.size(), 14u);
}

// ------------------------------------------------------------- Fig 4 ----

TEST(Integration, Fig4WaitRegimes) {
  const auto waits = study().waitings();
  EXPECT_GT(sys(waits, "Helios").frac_wait_under_10s, 0.6);
  EXPECT_GT(sys(waits, "Philly").frac_wait_over_10min, 0.4);
  EXPECT_GT(sys(waits, "BlueWaters").wait_summary.median,
            sys(waits, "Mira").wait_summary.median);
}

// ------------------------------------------------------------- Fig 5 ----

TEST(Integration, Fig5MiddleSizeWaitsLongest) {
  const auto waits = study().waitings();
  for (const char* name : {"BlueWaters", "Mira", "Philly", "Helios"}) {
    EXPECT_EQ(sys(waits, name).longest_wait_size,
              trace::SizeCategory::Middle)
        << name;
  }
  // The Theta exception: its largest jobs wait longest.
  EXPECT_EQ(sys(waits, "Theta").longest_wait_size,
            trace::SizeCategory::Large);
}

TEST(Integration, Fig5LongJobsWaitLongest) {
  for (const auto& w : study().waitings()) {
    const auto s = static_cast<std::size_t>(trace::LengthCategory::Short);
    const auto l = static_cast<std::size_t>(trace::LengthCategory::Long);
    if (w.jobs_by_length[l] < 20) continue;  // too few for a stable mean
    EXPECT_GT(w.mean_wait_by_length[l], w.mean_wait_by_length[s])
        << w.system;
  }
}

// ------------------------------------------------------------- Fig 6 ----

TEST(Integration, Fig6StatusMix) {
  for (const auto& f : study().failures()) {
    const double passed = f.overall.job_fraction(trace::JobStatus::Passed);
    EXPECT_LT(passed, 0.80) << f.system;
    EXPECT_GT(passed, 0.45) << f.system;
    // Killed jobs cost more than their count; Failed jobs cost less.
    EXPECT_GT(f.overall.core_hour_fraction(trace::JobStatus::Killed),
              f.overall.job_fraction(trace::JobStatus::Killed))
        << f.system;
    EXPECT_LT(f.overall.core_hour_fraction(trace::JobStatus::Failed),
              f.overall.job_fraction(trace::JobStatus::Failed))
        << f.system;
  }
}

// ------------------------------------------------------------- Fig 7 ----

TEST(Integration, Fig7SizeTrendOnlyInDl) {
  const auto fails = study().failures();
  EXPECT_LT(sys(fails, "Philly").pass_rate_size_trend, -0.01);
  EXPECT_LT(sys(fails, "Helios").pass_rate_size_trend, -0.01);
  EXPECT_GT(sys(fails, "Mira").pass_rate_size_trend, -0.05);
  EXPECT_GT(sys(fails, "BlueWaters").pass_rate_size_trend, -0.05);
}

TEST(Integration, Fig7LengthTrendEverywhere) {
  for (const auto& f : study().failures()) {
    EXPECT_LT(f.pass_rate_length_trend, 0.0) << f.system;
  }
  // Mira extreme: nearly all long jobs killed.
  const auto& mira = sys(study().failures(), "Mira");
  const auto& long_tally =
      mira.by_length[static_cast<std::size_t>(trace::LengthCategory::Long)];
  if (long_tally.total_jobs() >= 20) {
    EXPECT_GT(long_tally.job_fraction(trace::JobStatus::Killed), 0.8);
  }
}

// ------------------------------------------------------------- Fig 8 ----

TEST(Integration, Fig8RepetitionCoverage) {
  for (const auto& r : study().repetitions()) {
    if (r.representative_users == 0) continue;
    EXPECT_GT(r.cumulative_share[9], 0.75) << r.system;
  }
  const auto reps = study().repetitions();
  // HPC top-3 coverage clearly exceeds DL top-3 coverage.
  EXPECT_GT(sys(reps, "Mira").cumulative_share[2],
            sys(reps, "Philly").cumulative_share[2] + 0.1);
}

// ---------------------------------------------------------- Figs 9/10 ---

// The lowest-queue bucket can hold a negligible sliver of jobs on heavily
// backlogged systems (Philly's queue almost never drains); compare the
// congested bucket against the busiest *well-populated* calmer bucket.
std::size_t reference_bucket(const analysis::QueueBehaviorResult& q) {
  const std::size_t total =
      q.jobs_per_bucket[0] + q.jobs_per_bucket[1] + q.jobs_per_bucket[2];
  return q.jobs_per_bucket[0] * 20 >= total ? 0u : 1u;
}

TEST(Integration, Fig9SmallerRequestsUnderLoad) {
  int shrinking = 0;
  for (const auto& q : study().queue_behaviors()) {
    const auto ref = reference_bucket(q);
    const double big_calm = q.size_mix[ref][2] + q.size_mix[ref][3];
    const double big_long = q.size_mix[2][2] + q.size_mix[2][3];
    if (big_long < big_calm) ++shrinking;
  }
  EXPECT_GE(shrinking, 4);  // "a clear trend across most of the systems"
}

TEST(Integration, Fig10ShorterJobsUnderLoadOnlyInDl) {
  const auto qs = study().queue_behaviors();
  for (const char* name : {"Philly", "Helios"}) {
    const auto& q = sys(qs, name);
    EXPECT_LT(q.median_run[2], q.median_run[reference_bucket(q)]) << name;
  }
}

// ------------------------------------------------------------- Fig 11 ---

TEST(Integration, Fig11KilledLongerThanPassedPerUser) {
  for (const auto& r : study().user_statuses()) {
    for (const auto& u : r.top_users) {
      const auto& passed =
          u.runtime[static_cast<std::size_t>(trace::JobStatus::Passed)];
      const auto& killed =
          u.runtime[static_cast<std::size_t>(trace::JobStatus::Killed)];
      if (passed.count < 30 || killed.count < 30) continue;
      EXPECT_GT(killed.median, passed.median)
          << r.system << " user " << u.user;
    }
  }
}

// ----------------------------------------------------------- takeaways ---

TEST(Integration, AllEightTakeawaysReproduce) {
  const auto checks = core::check_takeaways(study());
  for (const auto& c : checks) {
    EXPECT_TRUE(c.holds) << "Takeaway " << c.number << ": " << c.claim
                         << "\nevidence: " << c.evidence;
  }
}

// ------------------------------------------------------------ Table II ---

TEST(Integration, TableTwoAdaptiveCutsViolations) {
  core::StudyOptions options;
  options.seed = 42;
  options.duration_days = 15.0;
  options.systems = {"Mira", "Theta"};
  const core::CrossSystemStudy sim_study(options);
  const auto rows = core::run_backfill_study(sim_study.traces());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    // Adaptive reduces total violation delay...
    EXPECT_LT(row.adaptive.total_violation, row.relaxed.total_violation)
        << row.system;
    // ...without wrecking the other metrics (within 15%).
    EXPECT_LT(std::fabs(row.wait_improvement), 0.15) << row.system;
    EXPECT_LT(std::fabs(row.util_improvement), 0.15) << row.system;
  }
}

// ----------------------------------------------- persistence round-trip ---

TEST(Integration, SwfAndCsvRoundTripPreserveAnalyses) {
  const auto& original = study().trace("Theta");
  std::ostringstream swf;
  trace::write_swf(swf, original);
  std::istringstream swf_in(swf.str());
  const auto reloaded = trace::read_swf(swf_in, original.spec());
  ASSERT_EQ(reloaded.size(), original.size());
  EXPECT_NEAR(stats::median(reloaded.run_times()),
              stats::median(original.run_times()), 1.0);

  std::ostringstream csv;
  trace::write_lumos_csv(csv, original);
  std::istringstream csv_in(csv.str());
  const auto csv_back = trace::read_lumos_csv(csv_in, original.spec());
  ASSERT_EQ(csv_back.size(), original.size());
  EXPECT_EQ(csv_back[0].status, original[0].status);
}

}  // namespace
}  // namespace lumos
