// DAG precedence, straggler hedging, and event-queue cancellation tests
// (DESIGN.md §4h): tombstone churn bit-identity across queue backends,
// typed DAG validation errors, topological release on hand-crafted
// workflows with exactly known outcomes, hedge win/lose/denied
// lifecycles, fault x hedging composition under aggressive MTBF, the
// critical-path policy, and the synth workflow generators + heavy-tail
// injector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "synth/dag.hpp"
#include "trace/dag.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos {
namespace {

trace::SystemSpec tiny_spec(std::uint32_t cores) {
  trace::SystemSpec spec;
  spec.name = "Tiny";
  spec.nodes = cores;
  spec.cores = cores;
  spec.has_walltime_estimates = true;
  return spec;
}

trace::Job job(std::uint64_t id, double submit, double run,
               std::uint32_t cores, std::vector<std::uint64_t> parents = {},
               double requested = -1.0) {
  trace::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.cores = cores;
  j.requested_time = requested > 0 ? requested : run;
  j.parents = std::move(parents);
  return j;
}

trace::Trace make_trace(std::uint32_t capacity, std::vector<trace::Job> jobs) {
  trace::Trace t(tiny_spec(capacity), std::move(jobs));
  t.sort_by_submit();
  return t;
}

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  return "";
}

// ------------------------------------------- EventQueue cancellation --

struct Ev {
  double time = 0.0;
  std::uint32_t id = 0;
  std::uint32_t seq = 0;
  [[nodiscard]] sim::EventKey key() const noexcept {
    return {time, sim::EventKind::Finish, id, seq};
  }
};

// Both backends, driven by one randomized push/pop/cancel script, must
// produce the pop sequence of a sorted reference model — and therefore
// bit-identical sequences to each other — with size() net of tombstones
// at every step.
TEST(EventQueueCancel, ChurnBitIdentityAcrossBackends) {
  sim::EventQueue<Ev> heap(sim::EventQueueKind::Heap);
  sim::EventQueue<Ev> calendar(sim::EventQueueKind::Calendar);
  std::vector<Ev> model;  // live, uncancelled entries
  util::Rng rng(20240808);
  std::uint32_t seq = 0;
  const auto model_min = [&]() {
    return std::min_element(model.begin(), model.end(),
                            [](const Ev& a, const Ev& b) {
                              return sim::event_before(a.key(), b.key());
                            });
  };
  for (int step = 0; step < 4000; ++step) {
    const double dice = rng.uniform();
    if (model.empty() || dice < 0.55) {
      const Ev e{rng.uniform(0.0, 1e4), static_cast<std::uint32_t>(
                                            rng.uniform_index(64)),
                 seq++};
      heap.push(e);
      calendar.push(e);
      model.push_back(e);
    } else if (dice < 0.80) {
      const auto it = model_min();
      const Ev expected = *it;
      model.erase(it);
      ASSERT_EQ(heap.top().key(), expected.key());
      ASSERT_EQ(calendar.top().key(), expected.key());
      heap.pop();
      calendar.pop();
    } else {
      const auto it = model.begin() +
                      static_cast<std::ptrdiff_t>(
                          rng.uniform_index(model.size()));
      heap.cancel(it->key());
      calendar.cancel(it->key());
      model.erase(it);
    }
    ASSERT_EQ(heap.size(), model.size());
    ASSERT_EQ(calendar.size(), model.size());
  }
  while (!model.empty()) {
    const auto it = model_min();
    ASSERT_EQ(heap.top().key(), it->key());
    ASSERT_EQ(calendar.top().key(), it->key());
    heap.pop();
    calendar.pop();
    model.erase(it);
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(heap.cancelled_total(), calendar.cancelled_total());
  EXPECT_GT(heap.cancelled_total(), 0u);
}

TEST(EventQueueCancel, CancelledHeadNeverSurfaces) {
  for (const auto kind :
       {sim::EventQueueKind::Heap, sim::EventQueueKind::Calendar}) {
    sim::EventQueue<Ev> q(kind);
    q.push({1.0, 1, 0});
    q.push({2.0, 2, 0});
    q.push({3.0, 3, 0});
    q.cancel(Ev{1.0, 1, 0}.key());  // head
    q.cancel(Ev{3.0, 3, 0}.key());  // tail
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.top().id, 2u);
    q.pop();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.cancelled_total(), 2u);
  }
}

// ----------------------------------------------------- DAG validation --

TEST(DagValidation, RejectsSelfEdge) {
  auto t = make_trace(4, {job(0, 0, 10, 1, {0})});
  const auto msg = thrown_message([&] { trace::validate_dependencies(t); });
  EXPECT_NE(msg.find("job 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("itself"), std::string::npos) << msg;
}

TEST(DagValidation, RejectsUnknownParent) {
  auto t = make_trace(4, {job(0, 0, 10, 1), job(1, 0, 10, 1, {7})});
  const auto msg = thrown_message([&] { trace::validate_dependencies(t); });
  EXPECT_NE(msg.find("job 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown parent"), std::string::npos) << msg;
}

TEST(DagValidation, RejectsDuplicateParent) {
  auto t = make_trace(4, {job(0, 0, 10, 1), job(1, 0, 10, 1, {0, 0})});
  const auto msg = thrown_message([&] { trace::validate_dependencies(t); });
  EXPECT_NE(msg.find("job 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("twice"), std::string::npos) << msg;
}

TEST(DagValidation, RejectsCycle) {
  auto t = make_trace(4, {job(0, 0, 10, 1, {1}), job(1, 0, 10, 1, {0})});
  const auto msg = thrown_message([&] { trace::validate_dependencies(t); });
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  EXPECT_NE(msg.find("job 0"), std::string::npos) << msg;
}

TEST(DagValidation, SimulatorRejectsCyclicTraces) {
  auto t = make_trace(4, {job(0, 0, 10, 1, {1}), job(1, 0, 10, 1, {0})});
  sim::SimConfig config;
  sim::Simulator simulator(t, config);
  EXPECT_THROW((void)simulator.run(), InvalidArgument);
}

// Property: every generated workflow trace validates, parents precede
// children in index order, and the critical path dominates each job's
// own weight.
TEST(DagValidation, PropertyRandomLayeredDagsValidate) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    synth::DagWorkloadOptions opt;
    opt.seed = seed;
    opt.workflows = 8;
    opt.shape = seed % 3 == 0 ? synth::WorkflowShape::Chain
                : seed % 3 == 1 ? synth::WorkflowShape::ForkJoin
                                : synth::WorkflowShape::RandomLayered;
    const auto t = synth::generate_dag_workload(opt);
    ASSERT_TRUE(trace::has_dependencies(t));
    EXPECT_NO_THROW(trace::validate_dependencies(t));
    std::vector<double> weights(t.size(), 1.0);
    const auto index = trace::build_dag_index(t, weights);
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_GE(index.critical_path[i], 1.0);
      for (const std::uint64_t p : t[i].parents) {
        EXPECT_LT(p, t[i].id) << "parent must precede child after sorting";
      }
    }
  }
}

TEST(DagValidation, SortBySubmitRemapsParentIds) {
  // B (id 1) depends on A (id 0) but was submitted earlier; sorting
  // renumbers A to 1 and must rewrite B's parent reference with it.
  trace::Trace t(tiny_spec(4));
  t.add(job(0, 100, 10, 1));      // A, submitted late
  t.add(job(1, 0, 10, 1, {0}));   // B, depends on A
  t.sort_by_submit();
  ASSERT_EQ(t[0].parents.size(), 1u);  // B is now index 0
  EXPECT_EQ(t[0].parents[0], 1u);      // ...and points at A's new id
  EXPECT_NO_THROW(trace::validate_dependencies(t));
}

// -------------------------------------------------- topological release --

sim::SimConfig audited(sim::PolicyKind policy = sim::PolicyKind::Fcfs) {
  sim::SimConfig config;
  config.policy = policy;
  config.audit = true;
  config.audit_fatal = true;
  return config;
}

TEST(DagRelease, ChainRunsStrictlyInOrder) {
  // Three 100 s jobs, all submitted at t=0, each filling the machine:
  // precedence alone forces starts at 0 / 100 / 200.
  const auto t = make_trace(
      10, {job(0, 0, 100, 10), job(1, 0, 100, 10, {0}),
           job(2, 0, 100, 10, {1})});
  const auto result = sim::simulate(t, audited());
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_time, 200.0);
  EXPECT_DOUBLE_EQ(result.makespan, 300.0);
  EXPECT_EQ(result.counters.dag_releases, 2u);
  EXPECT_EQ(result.counters.audit_failures, 0u);
}

TEST(DagRelease, ForkJoinSinkWaitsForSlowestBranch) {
  // source -> {fast, slow} -> sink; branches run concurrently, the sink
  // is released only by the slower one.
  const auto t = make_trace(
      10, {job(0, 0, 50, 2), job(1, 0, 30, 2, {0}), job(2, 0, 100, 2, {0}),
           job(3, 0, 10, 2, {1, 2})});
  const auto result = sim::simulate(t, audited());
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_time, 50.0);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_time, 50.0);
  EXPECT_DOUBLE_EQ(result.outcomes[3].start_time, 150.0);
  EXPECT_DOUBLE_EQ(result.makespan, 160.0);
  EXPECT_EQ(result.counters.dag_releases, 3u);
  EXPECT_EQ(result.counters.audit_failures, 0u);
}

TEST(DagRelease, DroppedParentCascadesAbandonment) {
  // The 20-core parent can never fit a 10-core machine: it is dropped,
  // and its descendants must be abandoned (not left Blocked forever).
  const auto t = make_trace(
      10, {job(0, 0, 100, 20), job(1, 0, 100, 5, {0}),
           job(2, 0, 100, 5, {1}), job(3, 0, 100, 5)});
  const auto result = sim::simulate(t, audited());
  EXPECT_EQ(result.skipped_oversized, 1u);
  EXPECT_EQ(result.counters.dag_abandoned, 2u);
  EXPECT_EQ(result.abandoned_jobs, 2u);
  EXPECT_TRUE(result.outcomes[1].abandoned);
  EXPECT_TRUE(result.outcomes[2].abandoned);
  EXPECT_FALSE(result.outcomes[1].started());
  EXPECT_TRUE(result.outcomes[3].started());  // independent job unaffected
  EXPECT_EQ(result.counters.audit_failures, 0u);
}

TEST(DagRelease, BackendsBitIdenticalOnWorkflows) {
  synth::DagWorkloadOptions opt;
  opt.workflows = 16;
  const auto t = synth::generate_dag_workload(opt);
  auto config = audited(sim::PolicyKind::CriticalPath);
  config.event_queue = sim::EventQueueKind::Heap;
  const auto heap = sim::simulate(t, config);
  config.event_queue = sim::EventQueueKind::Calendar;
  const auto calendar = sim::simulate(t, config);
  EXPECT_TRUE(heap == calendar);
  EXPECT_GT(heap.counters.dag_releases, 0u);
  EXPECT_EQ(heap.counters.audit_failures, 0u);
}

// ------------------------------------------------- critical-path policy --

TEST(CriticalPath, EdgeFreeFallsBackToLongestJobFirst) {
  const auto t = make_trace(10, {job(0, 0, 10, 10), job(1, 0, 100, 10)});
  const auto result = sim::simulate(t, audited(sim::PolicyKind::CriticalPath));
  // No DAG lanes: CP degrades to longest-planned-first.
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_time, 0.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_time, 100.0);
}

TEST(CriticalPath, PrefersLongDownstreamChain) {
  // Chain head (downstream path 300 s) vs a longer independent job
  // (150 s): CP runs the chain head first; SJF-style scores would not.
  const auto t = make_trace(
      10, {job(0, 0, 100, 10, {}), job(1, 0, 100, 10, {0}),
           job(2, 0, 100, 10, {1}), job(3, 0, 150, 10)});
  const auto result = sim::simulate(t, audited(sim::PolicyKind::CriticalPath));
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_time, 100.0);
  // The independent job outranks the 100 s chain tail (150 > 100).
  EXPECT_DOUBLE_EQ(result.outcomes[3].start_time, 200.0);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_time, 350.0);
  EXPECT_EQ(result.counters.audit_failures, 0u);
}

// ----------------------------------------------------------- hedging --

trace::Trace straggler_trace(std::uint32_t capacity, double run,
                             double hedge_run, double planned) {
  auto j = job(0, 0, run, 1, {}, planned);
  j.hedge_run_time = hedge_run;
  return make_trace(capacity, {j});
}

sim::SimConfig hedge_config(double threshold = 1.25,
                            double min_planned = 0.0) {
  auto config = audited();
  config.hedge.threshold = threshold;
  config.hedge.min_planned_s = min_planned;
  return config;
}

TEST(Hedging, DuplicateWinsAgainstStraggler) {
  // planned 100, threshold 1.25 -> check at 125; duplicate runs the
  // straggler-free 100 s and finishes at 225, beating the 1000 s primary.
  const auto t = straggler_trace(2, 1000, 100, 100);
  const auto result = sim::simulate(t, hedge_config());
  EXPECT_DOUBLE_EQ(result.makespan, 225.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].finish_time, 225.0);
  EXPECT_TRUE(result.outcomes[0].hedged);
  EXPECT_TRUE(result.outcomes[0].hedge_won);
  EXPECT_EQ(result.hedged_jobs, 1u);
  EXPECT_EQ(result.counters.hedges_launched, 1u);
  EXPECT_EQ(result.counters.hedges_won, 1u);
  EXPECT_EQ(result.counters.hedges_cancelled, 1u);
  EXPECT_EQ(result.counters.events_cancelled, 1u);
  // Loser (primary) burned 225 core-seconds; winner banked 100 useful.
  EXPECT_DOUBLE_EQ(result.wasted_core_hours, 225.0 / 3600.0);
  EXPECT_DOUBLE_EQ(result.goodput_core_hours, 100.0 / 3600.0);
  EXPECT_EQ(result.counters.audit_failures, 0u);
  const auto metrics = sim::compute_metrics(t, result);
  EXPECT_EQ(metrics.hedged_jobs, 1u);
}

TEST(Hedging, PrimaryWinsAndDuplicateIsCancelled) {
  // Primary ends at 150; the duplicate (launched 125, would end 225)
  // loses and is cancelled after burning 25 core-seconds.
  const auto t = straggler_trace(2, 150, 100, 100);
  const auto result = sim::simulate(t, hedge_config());
  EXPECT_DOUBLE_EQ(result.makespan, 150.0);
  EXPECT_TRUE(result.outcomes[0].hedged);
  EXPECT_FALSE(result.outcomes[0].hedge_won);
  EXPECT_EQ(result.counters.hedges_launched, 1u);
  EXPECT_EQ(result.counters.hedges_won, 0u);
  EXPECT_EQ(result.counters.hedges_cancelled, 1u);
  EXPECT_DOUBLE_EQ(result.wasted_core_hours, 25.0 / 3600.0);
  EXPECT_DOUBLE_EQ(result.goodput_core_hours, 150.0 / 3600.0);
  EXPECT_EQ(result.counters.audit_failures, 0u);
}

TEST(Hedging, ForfeitsWhenNoSpareCores) {
  // Capacity 1: the straggler holds the only core, so the hedge check
  // fires but cannot launch; the primary runs to its full 1000 s.
  const auto t = straggler_trace(1, 1000, 100, 100);
  const auto result = sim::simulate(t, hedge_config());
  EXPECT_DOUBLE_EQ(result.makespan, 1000.0);
  EXPECT_FALSE(result.outcomes[0].hedged);
  EXPECT_EQ(result.counters.hedges_launched, 0u);
  EXPECT_EQ(result.counters.hedges_cancelled, 0u);
  EXPECT_EQ(result.counters.audit_failures, 0u);
}

TEST(Hedging, MinPlannedGateSkipsShortJobs) {
  const auto t = straggler_trace(2, 1000, 100, 100);
  const auto result = sim::simulate(t, hedge_config(1.25, 500.0));
  EXPECT_DOUBLE_EQ(result.makespan, 1000.0);
  EXPECT_EQ(result.counters.hedges_launched, 0u);
  EXPECT_EQ(result.counters.events_cancelled, 0u);
}

TEST(Hedging, DisabledConfigLeavesCountersUntouched) {
  const auto t = straggler_trace(2, 1000, 100, 100);
  const auto result = sim::simulate(t, audited());
  EXPECT_EQ(result.counters.hedges_launched, 0u);
  EXPECT_EQ(result.counters.events_cancelled, 0u);
  EXPECT_EQ(result.hedged_jobs, 0u);
  EXPECT_DOUBLE_EQ(result.goodput_core_hours, 0.0);
}

// --------------------------------------------- fault x hedging composition --

sim::SimConfig chaos_config(sim::EventQueueKind kind) {
  auto config = audited(sim::PolicyKind::CriticalPath);
  config.event_queue = kind;
  config.hedge.threshold = 1.0;
  config.fault.node_mtbf_s = 1500.0;   // aggressive: many interruptions
  config.fault.node_mttr_s = 400.0;
  config.fault.retry_backoff_s = 60.0;
  config.fault.max_retries = 5;
  return config;
}

// Node failures interrupting hedged pairs: cores freed exactly once,
// goodput/waste accounted without double counting, auditor clean on
// every event, and both backends bit-identical through the chaos.
TEST(FaultHedging, AggressiveMtbfStaysAuditCleanAcrossBackends) {
  synth::DagWorkloadOptions gen;
  gen.workflows = 12;
  const auto base = synth::generate_dag_workload(gen);
  synth::HeavyTailOptions tail;
  tail.fraction = 0.3;
  const auto t = synth::inject_heavy_tail(base, tail);

  const auto heap = sim::simulate(t, chaos_config(sim::EventQueueKind::Heap));
  const auto calendar =
      sim::simulate(t, chaos_config(sim::EventQueueKind::Calendar));
  EXPECT_TRUE(heap == calendar);
  EXPECT_EQ(heap.counters.audit_failures, 0u);
  // The scenario actually exercises the composition: hedges launched,
  // nodes failed, and at least one cancellation happened.
  EXPECT_GT(heap.counters.hedges_launched, 0u);
  EXPECT_GT(heap.counters.node_failures, 0u);
  EXPECT_GT(heap.counters.jobs_interrupted, 0u);
  EXPECT_GT(heap.counters.events_cancelled, 0u);
  // Every resolved pair cancels exactly one copy: a winner implies a
  // cancelled loser, and nothing is double-counted.
  EXPECT_GE(heap.counters.hedges_cancelled, heap.counters.hedges_won);
  EXPECT_GE(heap.counters.hedges_launched, heap.counters.hedges_won);
  EXPECT_GE(heap.counters.hedges_launched, heap.counters.hedges_cancelled);
  EXPECT_GE(heap.goodput_core_hours, 0.0);
  EXPECT_GE(heap.wasted_core_hours, 0.0);
}

// ------------------------------------------------------ synth generators --

TEST(DagSynth, GeneratorIsDeterministic) {
  synth::DagWorkloadOptions opt;
  opt.workflows = 10;
  const auto a = synth::generate_dag_workload(opt);
  const auto b = synth::generate_dag_workload(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].run_time, b[i].run_time);
    EXPECT_EQ(a[i].cores, b[i].cores);
    EXPECT_EQ(a[i].parents, b[i].parents);
    EXPECT_EQ(a[i].user, b[i].user);
  }
}

TEST(DagSynth, ChainShapeLinksEachTaskToItsPredecessor) {
  synth::DagWorkloadOptions opt;
  opt.shape = synth::WorkflowShape::Chain;
  opt.workflows = 4;
  const auto t = synth::generate_dag_workload(opt);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].parents.empty()) continue;  // workflow head
    ASSERT_EQ(t[i].parents.size(), 1u);
    EXPECT_EQ(t[i].parents[0], t[i].id - 1);
    EXPECT_EQ(t[t[i].parents[0]].user, t[i].user);
  }
}

TEST(DagSynth, ForkJoinShapeHasFanOutAndJoin) {
  synth::DagWorkloadOptions opt;
  opt.shape = synth::WorkflowShape::ForkJoin;
  opt.workflows = 3;
  opt.min_tasks = 5;
  opt.max_tasks = 5;
  const auto t = synth::generate_dag_workload(opt);
  ASSERT_EQ(t.size(), 15u);
  for (std::size_t base = 0; base < t.size(); base += 5) {
    EXPECT_TRUE(t[base].parents.empty());          // source
    for (std::size_t k = 1; k <= 3; ++k) {         // fan-out
      ASSERT_EQ(t[base + k].parents.size(), 1u);
      EXPECT_EQ(t[base + k].parents[0], t[base].id);
    }
    EXPECT_EQ(t[base + 4].parents.size(), 3u);     // join
  }
}

TEST(DagSynth, ShapeParsingRoundTrips) {
  EXPECT_EQ(synth::workflow_shape_from_string("chain"),
            synth::WorkflowShape::Chain);
  EXPECT_EQ(synth::workflow_shape_from_string("ForkJoin"),
            synth::WorkflowShape::ForkJoin);
  EXPECT_EQ(synth::workflow_shape_from_string("layered"),
            synth::WorkflowShape::RandomLayered);
  EXPECT_THROW((void)synth::workflow_shape_from_string("ring"),
               InvalidArgument);
}

TEST(HeavyTail, InjectionIsDeterministicAndRecordsBaseRuntime) {
  synth::DagWorkloadOptions gen;
  gen.workflows = 10;
  const auto base = synth::generate_dag_workload(gen);
  synth::HeavyTailOptions opt;
  opt.fraction = 0.5;
  const auto a = synth::inject_heavy_tail(base, opt);
  const auto b = synth::inject_heavy_tail(base, opt);
  std::size_t stragglers = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].run_time, b[i].run_time);
    if (a[i].hedge_run_time > 0.0) {
      ++stragglers;
      EXPECT_EQ(a[i].hedge_run_time, base[i].run_time);
      EXPECT_GT(a[i].run_time, base[i].run_time);
      EXPECT_LE(a[i].run_time, base[i].run_time * opt.max_multiplier + 1e-9);
    } else {
      EXPECT_EQ(a[i].run_time, base[i].run_time);
    }
    EXPECT_EQ(a[i].requested_time, base[i].requested_time);  // untouched
  }
  EXPECT_GT(stragglers, 0u);
  EXPECT_LT(stragglers, a.size());
}

TEST(HeavyTail, ZeroFractionIsIdentity) {
  synth::DagWorkloadOptions gen;
  gen.workflows = 5;
  const auto base = synth::generate_dag_workload(gen);
  synth::HeavyTailOptions opt;
  opt.fraction = 0.0;
  const auto out = synth::inject_heavy_tail(base, opt);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(out[i].run_time, base[i].run_time);
    EXPECT_EQ(out[i].hedge_run_time, base[i].hedge_run_time);
  }
}

}  // namespace
}  // namespace lumos
