// Concurrency stress tests (label `tsan`).
//
// These are written to be meaningful twice over: under the `tsan` preset
// (`ctest --preset tsan` / `ctest -L tsan`) ThreadSanitizer watches the
// lock discipline while the pool is hammered from many threads; under the
// plain presets they still assert the functional contracts — submission
// totals, deterministic exception selection, the drain-or-fail shutdown
// guarantee, and cross-thread determinism of the parallel backfill study.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/backfill_study.hpp"
#include "core/study.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace lumos {
namespace {

// ------------------------------------------------------ submit stress ---

TEST(ThreadPoolTsan, ConcurrentSubmitFromManyThreads) {
  // An outer pool acts as the flock of submitters so the test itself obeys
  // the no-raw-thread rule; every inner future must round-trip its value.
  util::ThreadPool inner(3);
  util::ThreadPool outer(4);
  std::atomic<long> sum{0};
  outer.parallel_for(0, 64, [&](std::size_t i) {
    auto fut = inner.submit([i] { return static_cast<long>(i); });
    sum += fut.get();
  });
  EXPECT_EQ(sum.load(), 64L * 63L / 2L);
}

TEST(ThreadPoolTsan, ExceptionPropagationUnderContention) {
  // Dozens of tasks race through the queue; exactly the throwing third
  // surface exceptions through their futures, all others their values.
  util::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(60);
  for (int i = 0; i < 60; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 3 == 0) throw std::runtime_error("boom@" + std::to_string(i));
      return i;
    }));
  }
  int thrown = 0, returned = 0;
  for (int i = 0; i < 60; ++i) {
    try {
      EXPECT_EQ(futures[i].get(), i);
      ++returned;
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(e.what(), "boom@" + std::to_string(i));
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 20);
  EXPECT_EQ(returned, 40);
}

TEST(ThreadPoolTsan, ParallelForLowestIndexExceptionUnderContention) {
  // Same determinism guarantee as the util_test version, but with busy
  // bodies so several chunks are genuinely in flight when throws happen.
  util::ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::string caught;
    try {
      pool.parallel_for(0, 16, [](std::size_t i) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        if (i == 5 || i == 11) {
          throw std::runtime_error("boom@" + std::to_string(i));
        }
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "boom@5");
  }
}

// --------------------------------------------------- shutdown contract ---

TEST(ThreadPoolTsan, DestructorDrainsPendingTasks) {
  // Queue far more slow tasks than workers, then destroy the pool while
  // most are still pending: every single one must have run (the
  // drain-or-fail guarantee — nothing is silently dropped).
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 48; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
  }
  EXPECT_EQ(ran.load(), 48);
}

TEST(ThreadPoolTsan, ShutdownIsIdempotentAndSubmitAfterFails) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 8);  // drained before join returned
  pool.shutdown();           // idempotent
  EXPECT_THROW(pool.submit([] { return 1; }), InternalError);
  EXPECT_THROW(pool.parallel_for(0, 4, [](std::size_t) {}), InternalError);
  EXPECT_EQ(pool.size(), 0u);
}

// ------------------------------------------------------------- logging ---

TEST(LoggingTsan, ConcurrentEmissionKeepsLinesIntact) {
  const auto previous = util::log_level();
  util::set_log_level(util::LogLevel::Warn);
  testing::internal::CaptureStderr();
  {
    util::ThreadPool pool(4);
    pool.parallel_for(0, 48, [](std::size_t i) {
      LUMOS_WARN << "tsan line " << i;
    });
  }
  const std::string captured = testing::internal::GetCapturedStderr();
  util::set_log_level(previous);
  // Exactly one newline-terminated, well-formed record per emission: the
  // mutex around the sink must prevent sheared/interleaved lines.
  std::size_t lines = 0, tagged = 0, pos = 0;
  while ((pos = captured.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  pos = 0;
  while ((pos = captured.find("[lumos][WARN] tsan line ", pos)) !=
         std::string::npos) {
    ++tagged;
    pos += 1;
  }
  EXPECT_EQ(lines, 48u);
  EXPECT_EQ(tagged, 48u);
}

// ---------------------------------------- parallel backfill determinism ---

TEST(BackfillTsan, StudyIdenticalAcrossThreadCountsUnderStress) {
  // The Table II sweep fans per-trace simulation pairs across the pool;
  // under TSan this doubles as a race check on the row-assembly path, and
  // everywhere it re-proves bit-identical results for any worker count.
  core::StudyOptions options;
  options.seed = 11;
  options.duration_days = 1.0;
  options.systems = {"Theta", "BlueWaters"};
  const core::CrossSystemStudy study(options);
  core::BackfillStudyConfig serial_config;
  serial_config.threads = 1;
  core::BackfillStudyConfig wide_config;
  wide_config.threads = 4;
  const auto serial = core::run_backfill_study(study.traces(), serial_config);
  const auto wide = core::run_backfill_study(study.traces(), wide_config);
  ASSERT_EQ(serial.size(), wide.size());
  ASSERT_EQ(serial.size(), 2u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].system, wide[i].system);
    EXPECT_EQ(serial[i].relaxed.avg_wait, wide[i].relaxed.avg_wait);
    EXPECT_EQ(serial[i].adaptive.avg_wait, wide[i].adaptive.avg_wait);
    EXPECT_EQ(serial[i].relaxed.backfilled_jobs, wide[i].relaxed.backfilled_jobs);
    EXPECT_EQ(serial[i].adaptive.total_violation, wide[i].adaptive.total_violation);
  }
}

}  // namespace
}  // namespace lumos
