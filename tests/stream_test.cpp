// Tests for lumos::stream — the bounded-memory online characterization
// and the lumos-served ingest loop. The exact analyses in src/analysis
// are the reference: what the characterizer claims is exact must match
// them to floating-point noise; what is sketched must stay within the
// documented bounds. Labelled `tsan sanitize`: the concurrent sharded
// ingest test is this module's data-race probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "analysis/arrival.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "stats/descriptive.hpp"
#include "stream/checkpoint.hpp"
#include "stream/ingest.hpp"
#include "stream/online.hpp"
#include "stream/snapshot.hpp"
#include "stream/source.hpp"
#include "synth/generator.hpp"
#include "trace/swf.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/signal_util.hpp"
#include "util/thread_pool.hpp"

namespace lumos::stream {
namespace {

trace::Trace make_trace(std::size_t jobs = 3000, std::uint64_t seed = 42) {
  synth::GeneratorOptions options;
  options.seed = seed;
  options.duration_days = std::max(1.0, static_cast<double>(jobs) / 500.0);
  trace::Trace trace = synth::generate_system("Theta", options);
  return trace;
}

StreamConfig config_for(const trace::Trace& trace) {
  StreamConfig config;
  config.epoch_unix = trace.spec().epoch_unix;
  config.utc_offset_hours = trace.spec().utc_offset_hours;
  return config;
}

OnlineCharacterizer ingest_all(const trace::Trace& trace,
                               const StreamConfig& config) {
  OnlineCharacterizer chr(config);
  for (const auto& job : trace.jobs()) chr.ingest(job);
  return chr;
}

// ---- exactness against the batch analyses --------------------------------

TEST(OnlineCharacterizer, DiurnalProfileMatchesExactAnalysis) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  const auto exact = analysis::analyze_arrivals(trace);

  ASSERT_EQ(exact.hourly.size(), 24u);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(chr.hourly()[h], exact.hourly[h]) << "hour " << h;
  }
  EXPECT_DOUBLE_EQ(chr.peak_ratio(), exact.peak_ratio);
  EXPECT_DOUBLE_EQ(chr.business_hours_share(), exact.business_hours_share);
}

TEST(OnlineCharacterizer, InterarrivalMomentsMatchExactStats) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  const auto gaps = trace.interarrival_times();
  const auto summary = stats::summarize(gaps);

  EXPECT_EQ(chr.interarrival_gaps(), gaps.size());
  EXPECT_NEAR(chr.interarrival_mean(), summary.mean,
              1e-9 * std::max(1.0, summary.mean));
  const double exact_cv =
      summary.mean > 0.0 ? summary.stddev / summary.mean : 0.0;
  EXPECT_NEAR(chr.interarrival_cv(), exact_cv, 1e-6 * std::max(1.0, exact_cv));
}

TEST(OnlineCharacterizer, SketchQuantilesWithinBound) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  auto runtimes = trace.run_times();
  std::sort(runtimes.begin(), runtimes.end());
  const double n = static_cast<double>(runtimes.size());
  const double eps = chr.runtime_sketch().epsilon();
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double estimate = chr.runtime_sketch().quantile(q);
    // Convert to rank space: the exact rank of the estimate must be
    // within eps of q (ties covered by the lower/upper bound interval).
    const auto lo = std::lower_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    const auto hi = std::upper_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    const double f_lo = static_cast<double>(lo) / n;
    const double f_hi = static_cast<double>(hi) / n;
    EXPECT_LE(f_lo - eps, q) << "q=" << q;
    EXPECT_GE(f_hi + eps, q) << "q=" << q;
  }
}

// ---- windows -------------------------------------------------------------

TEST(OnlineCharacterizer, TumblingWindows) {
  StreamConfig config;
  config.window_seconds = 100.0;
  OnlineCharacterizer chr(config);
  trace::Job job;
  for (double t : {10.0, 20.0, 90.0}) {  // window 0: 3 jobs
    job.submit_time = t;
    chr.ingest(job);
  }
  EXPECT_EQ(chr.windows_completed(), 0u);
  EXPECT_EQ(chr.open_window_jobs(), 3u);

  job.submit_time = 150.0;  // window 1 opens, window 0 completes
  chr.ingest(job);
  EXPECT_EQ(chr.windows_completed(), 1u);
  EXPECT_EQ(chr.last_window().jobs, 3u);
  EXPECT_DOUBLE_EQ(chr.last_window().start, 0.0);
  EXPECT_DOUBLE_EQ(chr.last_window().rate_per_hour, 3.0 / (100.0 / 3600.0));

  job.submit_time = 480.0;  // skips windows 2 and 3 entirely
  chr.ingest(job);
  EXPECT_EQ(chr.windows_completed(), 4u);
  EXPECT_EQ(chr.last_window().jobs, 1u);
  EXPECT_EQ(chr.open_window_jobs(), 1u);
}

// ---- merge semantics -----------------------------------------------------

TEST(OnlineCharacterizer, ContiguousShardMergeMatchesSerial) {
  const auto trace = make_trace();
  const auto config = config_for(trace);
  const auto serial = ingest_all(trace, config);

  constexpr std::size_t kShards = 4;
  const auto jobs = trace.jobs();
  const std::size_t per = (jobs.size() + kShards - 1) / kShards;
  OnlineCharacterizer merged(config);
  for (std::size_t s = 0; s < kShards; ++s) {
    OnlineCharacterizer shard(config);
    const std::size_t begin = s * per;
    const std::size_t end = std::min(jobs.size(), begin + per);
    for (std::size_t i = begin; i < end; ++i) shard.ingest(jobs[i]);
    merged.merge(shard);
  }

  // Exact state merges exactly: counts, profile, moments (contiguous
  // shards reconstruct the boundary gaps), histogram.
  EXPECT_EQ(merged.jobs(), serial.jobs());
  EXPECT_EQ(merged.hourly(), serial.hourly());
  EXPECT_EQ(merged.interarrival_gaps(), serial.interarrival_gaps());
  EXPECT_NEAR(merged.interarrival_cv(), serial.interarrival_cv(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.first_submit(), serial.first_submit());
  EXPECT_DOUBLE_EQ(merged.last_submit(), serial.last_submit());
  for (int i = 0; i <= 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_DOUBLE_EQ(merged.runtime_histogram().quantile(q),
                     serial.runtime_histogram().quantile(q));
  }
  // Sketch state merges within its bound.
  const double eps = serial.runtime_sketch().epsilon();
  auto runtimes = trace.run_times();
  std::sort(runtimes.begin(), runtimes.end());
  const double n = static_cast<double>(runtimes.size());
  for (double q : {0.25, 0.5, 0.9}) {
    const double estimate = merged.runtime_sketch().quantile(q);
    const auto lo = std::lower_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    const auto hi = std::upper_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    EXPECT_LE(static_cast<double>(lo) / n - eps, q);
    EXPECT_GE(static_cast<double>(hi) / n + eps, q);
  }
}

TEST(OnlineCharacterizer, MergeRequiresIdenticalConfig) {
  OnlineCharacterizer a;
  StreamConfig other;
  other.sketch_k = 100;
  OnlineCharacterizer b(other);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

// The tsan-labelled probe: shards ingest concurrently on the pool, each
// into private state, then merge in index order on the caller. Any
// hidden shared mutable state in the sketches would trip TSan here.
TEST(OnlineCharacterizer, ConcurrentShardedIngest) {
  const auto trace = make_trace(6000, 7);
  const auto config = config_for(trace);
  const auto jobs = trace.jobs();

  constexpr std::size_t kShards = 8;
  std::vector<OnlineCharacterizer> shards;
  shards.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) shards.emplace_back(config);

  util::ThreadPool pool(kShards);
  std::vector<std::future<void>> futures;
  futures.reserve(kShards);
  const std::size_t per = (jobs.size() + kShards - 1) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    futures.push_back(pool.submit([&, s] {
      const std::size_t begin = s * per;
      const std::size_t end = std::min(jobs.size(), begin + per);
      for (std::size_t i = begin; i < end; ++i) shards[s].ingest(jobs[i]);
    }));
  }
  for (auto& f : futures) f.get();

  OnlineCharacterizer merged(config);
  for (const auto& shard : shards) merged.merge(shard);
  const auto serial = ingest_all(trace, config);
  EXPECT_EQ(merged.jobs(), serial.jobs());
  EXPECT_EQ(merged.hourly(), serial.hourly());
  EXPECT_NEAR(merged.interarrival_cv(), serial.interarrival_cv(), 1e-9);
}

// ---- bounded memory ------------------------------------------------------

TEST(OnlineCharacterizer, BoundedUserTable) {
  StreamConfig config;
  config.max_tracked_users = 16;
  config.max_groups_per_user = 4;
  OnlineCharacterizer chr(config);
  util::Rng rng(5);
  trace::Job job;
  for (int i = 0; i < 20000; ++i) {
    job.submit_time = static_cast<double>(i);
    job.user = static_cast<std::uint32_t>(rng.uniform(0.0, 500.0));
    job.cores = static_cast<std::uint32_t>(1 + rng.uniform(0.0, 64.0));
    job.run_time = std::exp(rng.normal(4.0, 2.0));
    chr.ingest(job);
  }
  EXPECT_LE(chr.tracked_users(), 16u);
  EXPECT_GT(chr.untracked_jobs(), 0u);
  // Total retained slots stay bounded regardless of stream length.
  EXPECT_LT(chr.retained_items(), 10000u);
}

TEST(OnlineCharacterizer, RetainedItemsPlateau) {
  const auto trace = make_trace(12000, 13);
  const auto config = config_for(trace);
  OnlineCharacterizer chr(config);
  std::size_t at_half = 0;
  const auto jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    chr.ingest(jobs[i]);
    if (i == jobs.size() / 2) at_half = chr.retained_items();
  }
  // Doubling the stream must not double retained state.
  EXPECT_LT(chr.retained_items(), at_half + at_half / 2 + 500);
}

// ---- repetition ----------------------------------------------------------

TEST(OnlineCharacterizer, RepetitionFindsRepeatedConfigs) {
  StreamConfig config;
  config.min_jobs_per_user = 50;
  OnlineCharacterizer chr(config);
  trace::Job job;
  // User 1: 100 jobs, all the same (cores, runtime) config.
  job.user = 1;
  job.cores = 16;
  job.run_time = 3600.0;
  for (int i = 0; i < 100; ++i) {
    job.submit_time = static_cast<double>(i);
    chr.ingest(job);
  }
  // User 2: only 10 jobs — below the representative threshold.
  job.user = 2;
  for (int i = 0; i < 10; ++i) {
    job.submit_time = 200.0 + static_cast<double>(i);
    chr.ingest(job);
  }
  const auto rep = chr.repetition(3);
  EXPECT_EQ(rep.representative_users, 1u);
  EXPECT_DOUBLE_EQ(rep.topk_share, 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_groups_per_user, 1.0);
}

// ---- publish -------------------------------------------------------------

TEST(OnlineCharacterizer, PublishEmitsDocumentedKeys) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  obs::Report report;
  chr.publish(report, "stream.");
  for (const char* key :
       {"stream.jobs", "stream.runtime_p50_s", "stream.wait_p50_s",
        "stream.interarrival_cv", "stream.peak_hour_ratio",
        "stream.business_hours_share", "stream.rep_top3_share",
        "stream.windows_completed", "stream.retained_items"}) {
    EXPECT_TRUE(report.metrics.contains(key)) << key;
  }
  EXPECT_DOUBLE_EQ(report.metrics.at("stream.jobs"),
                   static_cast<double>(trace.size()));
}

// ---- ingest loop ---------------------------------------------------------

TEST(Ingest, StreamToEofMatchesBatchReader) {
  const auto trace = make_trace();
  std::ostringstream swf;
  trace::write_swf(swf, trace);

  IngestOptions options;
  options.config = config_for(trace);
  std::istringstream in(swf.str());
  const auto result = ingest_stream(in, options);
  EXPECT_EQ(result.events, trace.size());
  EXPECT_EQ(result.bad_rows, 0u);
  EXPECT_EQ(result.characterizer.jobs(), trace.size());
}

TEST(Ingest, BadRowBudget) {
  IngestOptions options;
  options.bad_row_budget = 1;
  {
    std::istringstream in("garbage row\n");
    const auto result = ingest_stream(in, options);
    EXPECT_EQ(result.bad_rows, 1u);
    EXPECT_EQ(result.events, 0u);
  }
  {
    IngestOptions strict;
    strict.bad_row_budget = 0;
    std::istringstream in("garbage row\n");
    EXPECT_THROW((void)ingest_stream(in, strict), ParseError);
  }
}

TEST(Ingest, MaxEventsStopsEarly) {
  const auto trace = make_trace();
  std::ostringstream swf;
  trace::write_swf(swf, trace);
  IngestOptions options;
  options.config = config_for(trace);
  options.max_events = 10;
  std::istringstream in(swf.str());
  const auto result = ingest_stream(in, options);
  EXPECT_EQ(result.events, 10u);
}

TEST(Ingest, EndToEndReportRoundTrips) {
  namespace fs = std::filesystem;
  const auto trace = make_trace(1000, 3);
  const fs::path dir =
      fs::temp_directory_path() / "lumos_stream_test";
  fs::create_directories(dir);
  const fs::path swf_path = dir / "trace.swf";
  const fs::path report_path = dir / "report.json";
  trace::write_swf_file(swf_path.string(), trace);

  IngestOptions options;
  options.input_path = swf_path.string();
  options.output_path = report_path.string();
  options.config = config_for(trace);
  options.report_every_events = 100;
  const auto result = run_ingest(options);
  EXPECT_EQ(result.events, trace.size());
  EXPECT_GE(result.reports_written, 1u);

  // The emitted document is valid JSON with the documented schema, and
  // its harness entry round-trips through obs::Report::from_json.
  std::ifstream in(report_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = obs::Json::parse(buffer.str());
  const auto* meta = doc.find("_meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("schema_version")->as_int(), kReportSchemaVersion);
  EXPECT_EQ(meta->find("events")->as_int(),
            static_cast<std::int64_t>(trace.size()));
  const auto* entry = doc.find("lumos_serve");
  ASSERT_NE(entry, nullptr);
  const auto report = obs::Report::from_json("lumos_serve", *entry);
  EXPECT_DOUBLE_EQ(report.metrics.at("stream.jobs"),
                   static_cast<double>(trace.size()));

  fs::remove_all(dir);
}

TEST(Ingest, ReportDocumentIsDeterministicInState) {
  const auto trace = make_trace(500, 9);
  std::ostringstream swf;
  trace::write_swf(swf, trace);
  IngestOptions options;
  options.config = config_for(trace);
  std::istringstream in1(swf.str()), in2(swf.str());
  auto r1 = ingest_stream(in1, options);
  auto r2 = ingest_stream(in2, options);
  // Gauges (rates, RSS) vary run to run; the metrics section must not.
  const auto d1 = make_report_document(r1, "test");
  const auto d2 = make_report_document(r2, "test");
  const auto* m1 = d1.find("lumos_serve")->find("metrics");
  const auto* m2 = d2.find("lumos_serve")->find("metrics");
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(*m1, *m2);
}

// ---- state snapshots (crash-consistent serve mode, DESIGN.md §4g) --------

TEST(Snapshot, RestoredCharacterizerIsBitIdentical) {
  // Stop at an arbitrary point, snapshot, restore, continue: the restored
  // instance must land in the exact state of one that never stopped —
  // including sketch rng — which is what makes kill-and-resume reports
  // identical. The JSON encoding of the full state is the equality probe.
  const auto trace = make_trace(3000, 31);
  const auto config = config_for(trace);
  const auto& jobs = trace.jobs();
  const std::size_t split = jobs.size() / 3;
  OnlineCharacterizer uninterrupted(config);
  OnlineCharacterizer stopped(config);
  for (std::size_t i = 0; i < split; ++i) {
    uninterrupted.ingest(jobs[i]);
    stopped.ingest(jobs[i]);
  }
  OnlineCharacterizer resumed = OnlineCharacterizer::restore(
      characterizer_from_json(to_json(stopped.snapshot())));
  for (std::size_t i = split; i < jobs.size(); ++i) {
    uninterrupted.ingest(jobs[i]);
    resumed.ingest(jobs[i]);
  }
  EXPECT_EQ(to_json(resumed.snapshot()).dump(),
            to_json(uninterrupted.snapshot()).dump());
}

TEST(Snapshot, RoundTripAcrossWindowStates) {
  // Windows not yet started (no jobs), mid-window, and after many
  // completed windows: every window bookkeeping state must survive.
  const auto trace = make_trace(2000, 32);
  auto config = config_for(trace);
  config.window_seconds = 3600.0;  // many completed windows in the trace
  OnlineCharacterizer chr(config);
  const auto probe = [&] {
    const auto snap = chr.snapshot();
    const auto restored = OnlineCharacterizer::restore(snap);
    EXPECT_EQ(to_json(restored.snapshot()).dump(), to_json(snap).dump());
  };
  probe();  // empty, window not started
  for (std::size_t i = 0; i < trace.jobs().size(); ++i) {
    chr.ingest(trace.jobs()[i]);
    if (i == 0 || i == trace.jobs().size() / 2) probe();
  }
  probe();  // after completed windows
  EXPECT_GT(chr.windows_completed(), 1u);
}

TEST(Snapshot, JsonCodecRoundTripsExactly) {
  const auto trace = make_trace(1500, 33);
  auto chr = ingest_all(trace, config_for(trace));
  const std::string text = to_json(chr.snapshot()).dump();
  const auto decoded = characterizer_from_json(obs::Json::parse(text));
  EXPECT_EQ(to_json(decoded).dump(), text);
}

TEST(Snapshot, CorruptedStateIsRejectedOnRestore) {
  const auto trace = make_trace(800, 34);
  auto chr = ingest_all(trace, config_for(trace));
  auto snapshot = chr.snapshot();
  snapshot.jobs += 1;  // sketch counts no longer match the job count
  EXPECT_THROW(OnlineCharacterizer::restore(snapshot), Error);
}

TEST(Snapshot, MalformedDocumentNamesTheOffendingPath) {
  const auto trace = make_trace(500, 35);
  auto chr = ingest_all(trace, config_for(trace));
  auto doc = to_json(chr.snapshot());
  doc["jobs"] = obs::Json("not-a-number");
  try {
    (void)characterizer_from_json(doc);
    FAIL() << "malformed snapshot decoded";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("jobs"), std::string::npos);
  }
}

// ---- checkpoints ---------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lumos_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static Checkpoint make_checkpoint(std::uint64_t events,
                                    std::uint64_t seed = 40) {
    const auto trace = make_trace(events, seed);
    Checkpoint cp;
    OnlineCharacterizer chr(config_for(trace));
    for (std::size_t i = 0; i < events && i < trace.jobs().size(); ++i) {
      chr.ingest(trace.jobs()[i]);
    }
    cp.cursor.input = "test.swf";
    cp.cursor.byte_offset = events * 64;
    cp.cursor.line = events;
    cp.cursor.events = chr.jobs();
    cp.characterizer = chr.snapshot();
    return cp;
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, SaveThenLoadIsPrimaryAndExact) {
  const Checkpoint cp = make_checkpoint(300);
  save_checkpoint(cp, path("ck.json"));
  const CheckpointLoad load = load_checkpoint(path("ck.json"));
  EXPECT_EQ(load.outcome, CheckpointLoad::Outcome::Primary);
  ASSERT_TRUE(load.checkpoint.has_value());
  EXPECT_EQ(load.checkpoint->cursor.events, cp.cursor.events);
  EXPECT_EQ(load.checkpoint->cursor.byte_offset, cp.cursor.byte_offset);
  EXPECT_EQ(to_json(load.checkpoint->characterizer).dump(),
            to_json(cp.characterizer).dump());
}

TEST_F(CheckpointTest, MissingFileIsNoCheckpoint) {
  const CheckpointLoad load = load_checkpoint(path("absent.json"));
  EXPECT_EQ(load.outcome, CheckpointLoad::Outcome::NoCheckpoint);
  EXPECT_FALSE(load.checkpoint.has_value());
}

TEST_F(CheckpointTest, CorruptPrimaryFallsBackToPrev) {
  // Two saves: the first document rotates to .prev. A torn/corrupted
  // primary must fall back to it — never crash, never silently restart
  // from zero state.
  save_checkpoint(make_checkpoint(100), path("ck.json"));
  save_checkpoint(make_checkpoint(200), path("ck.json"));
  {
    std::ofstream torn(path("ck.json"), std::ios::binary | std::ios::trunc);
    torn << "{\"_meta\": {\"schema_version\": 1, \"kind\": \"lumos_che";
  }
  const CheckpointLoad load = load_checkpoint(path("ck.json"));
  EXPECT_EQ(load.outcome, CheckpointLoad::Outcome::Fallback);
  ASSERT_TRUE(load.checkpoint.has_value());
  EXPECT_EQ(load.checkpoint->cursor.events,
            make_checkpoint(100).cursor.events);
  EXPECT_FALSE(load.detail.empty());
}

TEST_F(CheckpointTest, BothCorruptIsLoudFreshStart) {
  {
    std::ofstream a(path("ck.json"), std::ios::binary);
    a << "not json";
    std::ofstream b(path("ck.json.prev"), std::ios::binary);
    b << "[1, 2,";
  }
  const CheckpointLoad load = load_checkpoint(path("ck.json"));
  EXPECT_EQ(load.outcome, CheckpointLoad::Outcome::CorruptIgnored);
  EXPECT_FALSE(load.checkpoint.has_value());
  EXPECT_FALSE(load.detail.empty());
}

TEST_F(CheckpointTest, WrongSchemaOrKindIsRejected) {
  auto doc = to_json(make_checkpoint(50));
  auto meta = obs::Json::object();
  meta["schema_version"] = obs::Json(std::int64_t{999});
  meta["kind"] = obs::Json("lumos_checkpoint");
  doc["_meta"] = std::move(meta);
  EXPECT_THROW((void)checkpoint_from_json(doc), InvalidArgument);
}

TEST_F(CheckpointTest, FingerprintWindowAndZeroOffset) {
  const std::string file = path("input.swf");
  {
    std::ofstream out(file, std::ios::binary);
    out << std::string(1000, 'a') << std::string(1000, 'b');
  }
  EXPECT_EQ(input_fingerprint(file, 0), 0u);
  const std::uint64_t fp = input_fingerprint(file, 1500);
  EXPECT_NE(fp, 0u);
  EXPECT_EQ(input_fingerprint(file, 1500), fp);  // deterministic
  EXPECT_NE(input_fingerprint(file, 1000), fp);  // offset-sensitive
  EXPECT_THROW((void)input_fingerprint(path("gone"), 10), SourceError);
  // Shorter file than the claimed offset: the cursor cannot describe it.
  EXPECT_THROW((void)input_fingerprint(file, 50000), SourceError);
}

// ---- resilient sources ---------------------------------------------------

TEST_F(CheckpointTest, FileSourceReadsAndSeeks) {
  const std::string file = path("source.txt");
  {
    std::ofstream out(file, std::ios::binary);
    out << "0123456789";
  }
  auto source = open_event_source(file);
  EXPECT_TRUE(source->seekable());
  char buf[4];
  auto r = source->read_some(buf, sizeof(buf));
  EXPECT_EQ(r.status, ReadStatus::Data);
  EXPECT_EQ(std::string(buf, r.bytes), "0123");
  source->seek(8);
  r = source->read_some(buf, sizeof(buf));
  EXPECT_EQ(r.status, ReadStatus::Data);
  EXPECT_EQ(std::string(buf, r.bytes), "89");
  r = source->read_some(buf, sizeof(buf));
  EXPECT_EQ(r.status, ReadStatus::Eof);
}

TEST(Source, MissingFileThrowsSourceError) {
  try {
    (void)open_event_source("/nonexistent/lumos/source.swf");
    FAIL() << "open succeeded on a missing path";
  } catch (const SourceError& e) {
    EXPECT_NE(e.errno_value(), 0);
  }
}

namespace {

/// Fails the first `failures` reads with a transient SourceError, then
/// serves `payload` and EOF. Non-seekable, like a pipe.
class FlakySource : public EventSource {
 public:
  FlakySource(int failures, std::string payload)
      : failures_(failures), payload_(std::move(payload)) {}

  ReadResult read_some(char* data, std::size_t capacity) override {
    if (failures_ > 0) {
      --failures_;
      throw SourceError("flaky: transient read failure", EIO);
    }
    if (pos_ >= payload_.size()) return {ReadStatus::Eof, 0};
    const std::size_t n = std::min(capacity, payload_.size() - pos_);
    std::copy_n(payload_.data() + pos_, n, data);
    pos_ += n;
    return {ReadStatus::Data, n};
  }
  const std::string& describe() const noexcept override { return name_; }

 private:
  int failures_;
  std::string payload_;
  std::size_t pos_ = 0;
  std::string name_ = "flaky";
};

}  // namespace

TEST(Source, RetryScheduleIsDeterministic) {
  std::vector<double> delays;
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.base_delay_s = 0.05;
  policy.max_delay_s = 1.0;
  policy.sleep = [&](double s) { delays.push_back(s); };
  RetryingSource source(std::make_unique<FlakySource>(3, "abc"), policy);
  char buf[8];
  const auto r = source.read_some(buf, sizeof(buf));
  EXPECT_EQ(r.status, ReadStatus::Data);
  EXPECT_EQ(std::string(buf, r.bytes), "abc");
  EXPECT_EQ(source.retries(), 3u);
  // Exactly util::backoff_delay_seconds(0.05, 1.0, i) for i = 1..3 — the
  // same deterministic schedule the supervisor uses, no jitter.
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_DOUBLE_EQ(delays[0], 0.05);
  EXPECT_DOUBLE_EQ(delays[1], 0.1);
  EXPECT_DOUBLE_EQ(delays[2], 0.2);
}

TEST(Source, RetriesExhaustRethrowTheSourceError) {
  std::vector<double> delays;
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.sleep = [&](double s) { delays.push_back(s); };
  RetryingSource source(std::make_unique<FlakySource>(10, ""), policy);
  char buf[8];
  EXPECT_THROW((void)source.read_some(buf, sizeof(buf)), SourceError);
  EXPECT_EQ(delays.size(), 2u);  // slept before each retry, then gave up
}

// ---- crash consistency end to end (in-library kill-and-resume) -----------

TEST_F(CheckpointTest, ResumeAfterStopMatchesUninterruptedRun) {
  const auto trace = make_trace(1200, 44);
  const std::string swf = path("stream.swf");
  trace::write_swf_file(swf, trace);
  const std::uint64_t total = trace.size();

  IngestOptions base;
  base.input_path = swf;
  base.config = config_for(trace);
  base.report_every_events = 0;
  const IngestResult uninterrupted = run_ingest(base);
  ASSERT_EQ(uninterrupted.events, total);

  // Stop partway (max_events stands in for the kill; the final checkpoint
  // at stop is exactly what a graceful shutdown writes).
  IngestOptions stopped = base;
  stopped.checkpoint_path = path("ck.json");
  stopped.checkpoint_every_events = 100;
  stopped.max_events = total / 2;
  const IngestResult partial = run_ingest(stopped);
  EXPECT_EQ(partial.events, total / 2);
  EXPECT_GE(partial.checkpoints_written, 1u);

  IngestOptions resumed = stopped;
  resumed.max_events = 0;
  const IngestResult rest = run_ingest(resumed);
  EXPECT_EQ(rest.events, total);
  EXPECT_EQ(rest.resumed_events, total / 2);
  EXPECT_EQ(rest.replayed_events, total - total / 2);
  EXPECT_EQ(rest.events, rest.resumed_events + rest.replayed_events);

  // The resumed run's report is indistinguishable from never stopping.
  const obs::Json direct_doc = make_report_document(uninterrupted, "t");
  const obs::Json after_doc = make_report_document(rest, "t");
  const auto* direct = direct_doc.find("lumos_serve");
  const auto* after = after_doc.find("lumos_serve");
  ASSERT_NE(direct, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(*direct->find("metrics"), *after->find("metrics"));
}

TEST_F(CheckpointTest, ResumeRefusesRewrittenInput) {
  const auto trace = make_trace(600, 45);
  const std::string swf = path("stream.swf");
  trace::write_swf_file(swf, trace);

  IngestOptions options;
  options.input_path = swf;
  options.config = config_for(trace);
  options.report_every_events = 0;
  options.checkpoint_path = path("ck.json");
  options.max_events = 200;
  (void)run_ingest(options);

  // Replace the input with different content (longer, so the fingerprint
  // window is readable and the mismatch — not a short read — is what
  // trips): the cursor no longer describes this file, and resuming would
  // double-count.
  trace::write_swf_file(swf, make_trace(1200, 46));
  options.max_events = 0;
  EXPECT_THROW((void)run_ingest(options), InvalidArgument);
}

TEST_F(CheckpointTest, NoResumeFlagStartsFresh) {
  const auto trace = make_trace(400, 47);
  const std::string swf = path("stream.swf");
  trace::write_swf_file(swf, trace);
  IngestOptions options;
  options.input_path = swf;
  options.config = config_for(trace);
  options.report_every_events = 0;
  options.checkpoint_path = path("ck.json");
  options.max_events = 150;
  (void)run_ingest(options);

  options.resume = false;
  options.max_events = 0;
  const IngestResult fresh = run_ingest(options);
  EXPECT_EQ(fresh.resumed_events, 0u);
  EXPECT_EQ(fresh.events, trace.size());
}

TEST_F(CheckpointTest, ShutdownFlagStopsLoopGracefully) {
  const auto trace = make_trace(500, 48);
  const std::string swf = path("stream.swf");
  trace::write_swf_file(swf, trace);

  util::install_shutdown_signals();
  util::clear_shutdown_request();
  std::raise(SIGTERM);
  ASSERT_TRUE(util::shutdown_requested());

  IngestOptions options;
  options.input_path = swf;
  options.config = config_for(trace);
  options.report_every_events = 0;
  options.checkpoint_path = path("ck.json");
  const IngestResult result = run_ingest(options);
  util::clear_shutdown_request();

  // The pending flag is honoured before the first read: nothing ingested,
  // the cause is recorded, and a final checkpoint still lands.
  EXPECT_EQ(result.shutdown_signal, SIGTERM);
  EXPECT_EQ(result.events, 0u);
  EXPECT_GE(result.checkpoints_written, 1u);
  EXPECT_EQ(load_checkpoint(path("ck.json")).outcome,
            CheckpointLoad::Outcome::Primary);
}

}  // namespace
}  // namespace lumos::stream
