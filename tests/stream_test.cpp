// Tests for lumos::stream — the bounded-memory online characterization
// and the lumos-served ingest loop. The exact analyses in src/analysis
// are the reference: what the characterizer claims is exact must match
// them to floating-point noise; what is sketched must stay within the
// documented bounds. Labelled `tsan sanitize`: the concurrent sharded
// ingest test is this module's data-race probe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <vector>

#include "analysis/arrival.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "stats/descriptive.hpp"
#include "stream/ingest.hpp"
#include "stream/online.hpp"
#include "synth/generator.hpp"
#include "trace/swf.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lumos::stream {
namespace {

trace::Trace make_trace(std::size_t jobs = 3000, std::uint64_t seed = 42) {
  synth::GeneratorOptions options;
  options.seed = seed;
  options.duration_days = std::max(1.0, static_cast<double>(jobs) / 500.0);
  trace::Trace trace = synth::generate_system("Theta", options);
  return trace;
}

StreamConfig config_for(const trace::Trace& trace) {
  StreamConfig config;
  config.epoch_unix = trace.spec().epoch_unix;
  config.utc_offset_hours = trace.spec().utc_offset_hours;
  return config;
}

OnlineCharacterizer ingest_all(const trace::Trace& trace,
                               const StreamConfig& config) {
  OnlineCharacterizer chr(config);
  for (const auto& job : trace.jobs()) chr.ingest(job);
  return chr;
}

// ---- exactness against the batch analyses --------------------------------

TEST(OnlineCharacterizer, DiurnalProfileMatchesExactAnalysis) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  const auto exact = analysis::analyze_arrivals(trace);

  ASSERT_EQ(exact.hourly.size(), 24u);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(chr.hourly()[h], exact.hourly[h]) << "hour " << h;
  }
  EXPECT_DOUBLE_EQ(chr.peak_ratio(), exact.peak_ratio);
  EXPECT_DOUBLE_EQ(chr.business_hours_share(), exact.business_hours_share);
}

TEST(OnlineCharacterizer, InterarrivalMomentsMatchExactStats) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  const auto gaps = trace.interarrival_times();
  const auto summary = stats::summarize(gaps);

  EXPECT_EQ(chr.interarrival_gaps(), gaps.size());
  EXPECT_NEAR(chr.interarrival_mean(), summary.mean,
              1e-9 * std::max(1.0, summary.mean));
  const double exact_cv =
      summary.mean > 0.0 ? summary.stddev / summary.mean : 0.0;
  EXPECT_NEAR(chr.interarrival_cv(), exact_cv, 1e-6 * std::max(1.0, exact_cv));
}

TEST(OnlineCharacterizer, SketchQuantilesWithinBound) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  auto runtimes = trace.run_times();
  std::sort(runtimes.begin(), runtimes.end());
  const double n = static_cast<double>(runtimes.size());
  const double eps = chr.runtime_sketch().epsilon();
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double estimate = chr.runtime_sketch().quantile(q);
    // Convert to rank space: the exact rank of the estimate must be
    // within eps of q (ties covered by the lower/upper bound interval).
    const auto lo = std::lower_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    const auto hi = std::upper_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    const double f_lo = static_cast<double>(lo) / n;
    const double f_hi = static_cast<double>(hi) / n;
    EXPECT_LE(f_lo - eps, q) << "q=" << q;
    EXPECT_GE(f_hi + eps, q) << "q=" << q;
  }
}

// ---- windows -------------------------------------------------------------

TEST(OnlineCharacterizer, TumblingWindows) {
  StreamConfig config;
  config.window_seconds = 100.0;
  OnlineCharacterizer chr(config);
  trace::Job job;
  for (double t : {10.0, 20.0, 90.0}) {  // window 0: 3 jobs
    job.submit_time = t;
    chr.ingest(job);
  }
  EXPECT_EQ(chr.windows_completed(), 0u);
  EXPECT_EQ(chr.open_window_jobs(), 3u);

  job.submit_time = 150.0;  // window 1 opens, window 0 completes
  chr.ingest(job);
  EXPECT_EQ(chr.windows_completed(), 1u);
  EXPECT_EQ(chr.last_window().jobs, 3u);
  EXPECT_DOUBLE_EQ(chr.last_window().start, 0.0);
  EXPECT_DOUBLE_EQ(chr.last_window().rate_per_hour, 3.0 / (100.0 / 3600.0));

  job.submit_time = 480.0;  // skips windows 2 and 3 entirely
  chr.ingest(job);
  EXPECT_EQ(chr.windows_completed(), 4u);
  EXPECT_EQ(chr.last_window().jobs, 1u);
  EXPECT_EQ(chr.open_window_jobs(), 1u);
}

// ---- merge semantics -----------------------------------------------------

TEST(OnlineCharacterizer, ContiguousShardMergeMatchesSerial) {
  const auto trace = make_trace();
  const auto config = config_for(trace);
  const auto serial = ingest_all(trace, config);

  constexpr std::size_t kShards = 4;
  const auto jobs = trace.jobs();
  const std::size_t per = (jobs.size() + kShards - 1) / kShards;
  OnlineCharacterizer merged(config);
  for (std::size_t s = 0; s < kShards; ++s) {
    OnlineCharacterizer shard(config);
    const std::size_t begin = s * per;
    const std::size_t end = std::min(jobs.size(), begin + per);
    for (std::size_t i = begin; i < end; ++i) shard.ingest(jobs[i]);
    merged.merge(shard);
  }

  // Exact state merges exactly: counts, profile, moments (contiguous
  // shards reconstruct the boundary gaps), histogram.
  EXPECT_EQ(merged.jobs(), serial.jobs());
  EXPECT_EQ(merged.hourly(), serial.hourly());
  EXPECT_EQ(merged.interarrival_gaps(), serial.interarrival_gaps());
  EXPECT_NEAR(merged.interarrival_cv(), serial.interarrival_cv(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.first_submit(), serial.first_submit());
  EXPECT_DOUBLE_EQ(merged.last_submit(), serial.last_submit());
  for (int i = 0; i <= 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_DOUBLE_EQ(merged.runtime_histogram().quantile(q),
                     serial.runtime_histogram().quantile(q));
  }
  // Sketch state merges within its bound.
  const double eps = serial.runtime_sketch().epsilon();
  auto runtimes = trace.run_times();
  std::sort(runtimes.begin(), runtimes.end());
  const double n = static_cast<double>(runtimes.size());
  for (double q : {0.25, 0.5, 0.9}) {
    const double estimate = merged.runtime_sketch().quantile(q);
    const auto lo = std::lower_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    const auto hi = std::upper_bound(runtimes.begin(), runtimes.end(),
                                     estimate) -
                    runtimes.begin();
    EXPECT_LE(static_cast<double>(lo) / n - eps, q);
    EXPECT_GE(static_cast<double>(hi) / n + eps, q);
  }
}

TEST(OnlineCharacterizer, MergeRequiresIdenticalConfig) {
  OnlineCharacterizer a;
  StreamConfig other;
  other.sketch_k = 100;
  OnlineCharacterizer b(other);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

// The tsan-labelled probe: shards ingest concurrently on the pool, each
// into private state, then merge in index order on the caller. Any
// hidden shared mutable state in the sketches would trip TSan here.
TEST(OnlineCharacterizer, ConcurrentShardedIngest) {
  const auto trace = make_trace(6000, 7);
  const auto config = config_for(trace);
  const auto jobs = trace.jobs();

  constexpr std::size_t kShards = 8;
  std::vector<OnlineCharacterizer> shards;
  shards.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) shards.emplace_back(config);

  util::ThreadPool pool(kShards);
  std::vector<std::future<void>> futures;
  futures.reserve(kShards);
  const std::size_t per = (jobs.size() + kShards - 1) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    futures.push_back(pool.submit([&, s] {
      const std::size_t begin = s * per;
      const std::size_t end = std::min(jobs.size(), begin + per);
      for (std::size_t i = begin; i < end; ++i) shards[s].ingest(jobs[i]);
    }));
  }
  for (auto& f : futures) f.get();

  OnlineCharacterizer merged(config);
  for (const auto& shard : shards) merged.merge(shard);
  const auto serial = ingest_all(trace, config);
  EXPECT_EQ(merged.jobs(), serial.jobs());
  EXPECT_EQ(merged.hourly(), serial.hourly());
  EXPECT_NEAR(merged.interarrival_cv(), serial.interarrival_cv(), 1e-9);
}

// ---- bounded memory ------------------------------------------------------

TEST(OnlineCharacterizer, BoundedUserTable) {
  StreamConfig config;
  config.max_tracked_users = 16;
  config.max_groups_per_user = 4;
  OnlineCharacterizer chr(config);
  util::Rng rng(5);
  trace::Job job;
  for (int i = 0; i < 20000; ++i) {
    job.submit_time = static_cast<double>(i);
    job.user = static_cast<std::uint32_t>(rng.uniform(0.0, 500.0));
    job.cores = static_cast<std::uint32_t>(1 + rng.uniform(0.0, 64.0));
    job.run_time = std::exp(rng.normal(4.0, 2.0));
    chr.ingest(job);
  }
  EXPECT_LE(chr.tracked_users(), 16u);
  EXPECT_GT(chr.untracked_jobs(), 0u);
  // Total retained slots stay bounded regardless of stream length.
  EXPECT_LT(chr.retained_items(), 10000u);
}

TEST(OnlineCharacterizer, RetainedItemsPlateau) {
  const auto trace = make_trace(12000, 13);
  const auto config = config_for(trace);
  OnlineCharacterizer chr(config);
  std::size_t at_half = 0;
  const auto jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    chr.ingest(jobs[i]);
    if (i == jobs.size() / 2) at_half = chr.retained_items();
  }
  // Doubling the stream must not double retained state.
  EXPECT_LT(chr.retained_items(), at_half + at_half / 2 + 500);
}

// ---- repetition ----------------------------------------------------------

TEST(OnlineCharacterizer, RepetitionFindsRepeatedConfigs) {
  StreamConfig config;
  config.min_jobs_per_user = 50;
  OnlineCharacterizer chr(config);
  trace::Job job;
  // User 1: 100 jobs, all the same (cores, runtime) config.
  job.user = 1;
  job.cores = 16;
  job.run_time = 3600.0;
  for (int i = 0; i < 100; ++i) {
    job.submit_time = static_cast<double>(i);
    chr.ingest(job);
  }
  // User 2: only 10 jobs — below the representative threshold.
  job.user = 2;
  for (int i = 0; i < 10; ++i) {
    job.submit_time = 200.0 + static_cast<double>(i);
    chr.ingest(job);
  }
  const auto rep = chr.repetition(3);
  EXPECT_EQ(rep.representative_users, 1u);
  EXPECT_DOUBLE_EQ(rep.topk_share, 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_groups_per_user, 1.0);
}

// ---- publish -------------------------------------------------------------

TEST(OnlineCharacterizer, PublishEmitsDocumentedKeys) {
  const auto trace = make_trace();
  const auto chr = ingest_all(trace, config_for(trace));
  obs::Report report;
  chr.publish(report, "stream.");
  for (const char* key :
       {"stream.jobs", "stream.runtime_p50_s", "stream.wait_p50_s",
        "stream.interarrival_cv", "stream.peak_hour_ratio",
        "stream.business_hours_share", "stream.rep_top3_share",
        "stream.windows_completed", "stream.retained_items"}) {
    EXPECT_TRUE(report.metrics.contains(key)) << key;
  }
  EXPECT_DOUBLE_EQ(report.metrics.at("stream.jobs"),
                   static_cast<double>(trace.size()));
}

// ---- ingest loop ---------------------------------------------------------

TEST(Ingest, StreamToEofMatchesBatchReader) {
  const auto trace = make_trace();
  std::ostringstream swf;
  trace::write_swf(swf, trace);

  IngestOptions options;
  options.config = config_for(trace);
  std::istringstream in(swf.str());
  const auto result = ingest_stream(in, options);
  EXPECT_EQ(result.events, trace.size());
  EXPECT_EQ(result.bad_rows, 0u);
  EXPECT_EQ(result.characterizer.jobs(), trace.size());
}

TEST(Ingest, BadRowBudget) {
  IngestOptions options;
  options.bad_row_budget = 1;
  {
    std::istringstream in("garbage row\n");
    const auto result = ingest_stream(in, options);
    EXPECT_EQ(result.bad_rows, 1u);
    EXPECT_EQ(result.events, 0u);
  }
  {
    IngestOptions strict;
    strict.bad_row_budget = 0;
    std::istringstream in("garbage row\n");
    EXPECT_THROW((void)ingest_stream(in, strict), ParseError);
  }
}

TEST(Ingest, MaxEventsStopsEarly) {
  const auto trace = make_trace();
  std::ostringstream swf;
  trace::write_swf(swf, trace);
  IngestOptions options;
  options.config = config_for(trace);
  options.max_events = 10;
  std::istringstream in(swf.str());
  const auto result = ingest_stream(in, options);
  EXPECT_EQ(result.events, 10u);
}

TEST(Ingest, EndToEndReportRoundTrips) {
  namespace fs = std::filesystem;
  const auto trace = make_trace(1000, 3);
  const fs::path dir =
      fs::temp_directory_path() / "lumos_stream_test";
  fs::create_directories(dir);
  const fs::path swf_path = dir / "trace.swf";
  const fs::path report_path = dir / "report.json";
  trace::write_swf_file(swf_path.string(), trace);

  IngestOptions options;
  options.input_path = swf_path.string();
  options.output_path = report_path.string();
  options.config = config_for(trace);
  options.report_every_events = 100;
  const auto result = run_ingest(options);
  EXPECT_EQ(result.events, trace.size());
  EXPECT_GE(result.reports_written, 1u);

  // The emitted document is valid JSON with the documented schema, and
  // its harness entry round-trips through obs::Report::from_json.
  std::ifstream in(report_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = obs::Json::parse(buffer.str());
  const auto* meta = doc.find("_meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("schema_version")->as_int(), kReportSchemaVersion);
  EXPECT_EQ(meta->find("events")->as_int(),
            static_cast<std::int64_t>(trace.size()));
  const auto* entry = doc.find("lumos_serve");
  ASSERT_NE(entry, nullptr);
  const auto report = obs::Report::from_json("lumos_serve", *entry);
  EXPECT_DOUBLE_EQ(report.metrics.at("stream.jobs"),
                   static_cast<double>(trace.size()));

  fs::remove_all(dir);
}

TEST(Ingest, ReportDocumentIsDeterministicInState) {
  const auto trace = make_trace(500, 9);
  std::ostringstream swf;
  trace::write_swf(swf, trace);
  IngestOptions options;
  options.config = config_for(trace);
  std::istringstream in1(swf.str()), in2(swf.str());
  auto r1 = ingest_stream(in1, options);
  auto r2 = ingest_stream(in2, options);
  // Gauges (rates, RSS) vary run to run; the metrics section must not.
  const auto d1 = make_report_document(r1, "test");
  const auto d2 = make_report_document(r2, "test");
  const auto* m1 = d1.find("lumos_serve")->find("metrics");
  const auto* m2 = d2.find("lumos_serve")->find("metrics");
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(*m1, *m2);
}

}  // namespace
}  // namespace lumos::stream
