// Property-based tests (parameterized gtest): invariants that must hold
// across randomised inputs and configuration grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/metrics.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace lumos {
namespace {

// ------------------------------------------------ ECDF inverse property ---

class EcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProperty, QuantileIsLeftInverseOfCdf) {
  util::Rng rng(GetParam());
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(3.0, 2.0);
  const stats::Ecdf f(xs);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = f.quantile(q);
    // F(quantile(q)) >= q within one sample step.
    EXPECT_GE(f(x) + 1.0 / static_cast<double>(xs.size()) + 1e-12, q);
  }
}

TEST_P(EcdfProperty, CdfIsMonotone) {
  util::Rng rng(GetParam() ^ 0x5a5a);
  std::vector<double> xs(300);
  for (auto& x : xs) x = rng.normal(0.0, 10.0);
  const stats::Ecdf f(xs);
  double prev = -1.0;
  for (double x = -40.0; x <= 40.0; x += 0.5) {
    const double v = f(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -------------------------------------------- histogram mass invariance ---

class HistogramProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramProperty, TotalMassPreserved) {
  util::Rng rng(GetParam());
  auto h = stats::Histogram::logarithmic(1.0, 1e6, GetParam());
  const int n = 1000;
  for (int i = 0; i < n; ++i) h.add(rng.lognormal(5.0, 3.0));
  EXPECT_DOUBLE_EQ(h.total(), n);
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.count(b);
  EXPECT_DOUBLE_EQ(sum, n);
  double frac = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) frac += h.fraction(b);
  EXPECT_NEAR(frac, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramProperty,
                         ::testing::Values(1, 2, 7, 24, 100));

// ----------------------------------- profile vs brute-force reference -----

class ProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileProperty, MatchesBruteForceFreeAt) {
  util::Rng rng(GetParam());
  constexpr std::uint64_t kCapacity = 64;
  sim::ResourceProfile profile(0.0, kCapacity);
  struct Res {
    double start, end;
    std::uint64_t cores;
  };
  std::vector<Res> reservations;
  for (int i = 0; i < 40; ++i) {
    Res r;
    r.start = rng.uniform(0.0, 1000.0);
    r.end = r.start + rng.uniform(1.0, 300.0);
    r.cores = rng.uniform_index(16) + 1;
    // Only commit feasible reservations (like the simulator does).
    bool feasible = true;
    for (double t : {r.start, (r.start + r.end) / 2.0}) {
      std::uint64_t used = r.cores;
      for (const auto& o : reservations) {
        if (o.start <= t && t < o.end) used += o.cores;
      }
      feasible = feasible && used <= kCapacity;
    }
    if (!feasible) continue;
    profile.reserve(r.start, r.end, r.cores);
    reservations.push_back(r);
  }
  // Spot-check free_at against a brute-force sum at random times.
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 1400.0);
    std::uint64_t used = 0;
    for (const auto& r : reservations) {
      if (r.start <= t && t < r.end) used += r.cores;
    }
    const std::uint64_t expected =
        used > kCapacity ? 0 : kCapacity - used;
    EXPECT_EQ(profile.free_at(t), expected) << "t=" << t;
  }
}

TEST_P(ProfileProperty, EarliestStartIsFeasibleAndEarliest) {
  util::Rng rng(GetParam() ^ 0xbeef);
  constexpr std::uint64_t kCapacity = 32;
  sim::ResourceProfile profile(0.0, kCapacity);
  for (int i = 0; i < 25; ++i) {
    const double start = rng.uniform(0.0, 500.0);
    profile.reserve(start, start + rng.uniform(1.0, 200.0),
                    rng.uniform_index(kCapacity) + 1);
  }
  const std::uint64_t cores = rng.uniform_index(kCapacity) + 1;
  const double duration = rng.uniform(1.0, 100.0);
  const double est = profile.earliest_start(0.0, duration, cores);
  ASSERT_LT(est, sim::kTimeInfinity);
  // Feasible over the whole window.
  for (double f : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    EXPECT_GE(profile.free_at(est + f * duration), cores);
  }
  // No strictly earlier grid point works for the whole window.
  for (double cand = 0.0; cand < est - 1e-9; cand += est / 7.0 + 1e-3) {
    bool ok = true;
    for (double f = 0.0; f <= 1.0; f += 0.05) {
      ok = ok && profile.free_at(cand + f * duration) >= cores;
    }
    EXPECT_FALSE(ok) << "earlier feasible start at " << cand;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// -------------------------------- simulator invariants over config grid ---

struct SimGridParam {
  sim::PolicyKind policy;
  sim::BackfillKind backfill;
};

class SimulatorInvariants : public ::testing::TestWithParam<SimGridParam> {};

TEST_P(SimulatorInvariants, HoldOnSyntheticWorkload) {
  synth::GeneratorOptions gen_options;
  gen_options.seed = 99;
  gen_options.duration_days = 2.0;
  const auto trace = synth::generate_system("Theta", gen_options);

  sim::SimConfig config;
  config.policy = GetParam().policy;
  config.backfill.kind = GetParam().backfill;
  const auto result = sim::simulate(trace, config);

  // 1. Every job starts (capacity is ample) and never before submission.
  struct Event {
    double time;
    std::int64_t delta;
  };
  std::vector<Event> events;
  std::size_t started = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& outcome = result.outcomes[i];
    if (!outcome.started()) continue;
    ++started;
    EXPECT_GE(outcome.start_time, trace[i].submit_time - 1e-6);
    events.push_back({outcome.start_time,
                      static_cast<std::int64_t>(trace[i].cores)});
    events.push_back({outcome.start_time + trace[i].run_time,
                      -static_cast<std::int64_t>(trace[i].cores)});
  }
  EXPECT_EQ(started + result.skipped_oversized, trace.size());

  // 2. Aggregate capacity is never exceeded (releases before claims at
  // equal timestamps, as the simulator frees cores first).
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;
  });
  std::int64_t in_use = 0;
  const auto capacity =
      static_cast<std::int64_t>(trace.spec().primary_capacity());
  for (const auto& e : events) {
    in_use += e.delta;
    EXPECT_LE(in_use, capacity);
    EXPECT_GE(in_use, 0);
  }

  // 3. Metrics are finite and consistent.
  const auto metrics = sim::compute_metrics(trace, result);
  EXPECT_EQ(metrics.jobs, started);
  EXPECT_GE(metrics.avg_bounded_slowdown, 1.0);
  EXPECT_GE(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0 + 1e-9);

  // 4. Strict EASY under FCFS never violates its reservations.
  if (GetParam().policy == sim::PolicyKind::Fcfs &&
      GetParam().backfill == sim::BackfillKind::Easy) {
    EXPECT_EQ(metrics.violated_jobs, 0u);
  }
}

std::string grid_name(
    const ::testing::TestParamInfo<SimGridParam>& info) {
  return std::string(to_string(info.param.policy)) + "_" +
         std::string(to_string(info.param.backfill).substr(0, 4)) +
         std::to_string(info.index);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorInvariants,
    ::testing::Values(
        SimGridParam{sim::PolicyKind::Fcfs, sim::BackfillKind::None},
        SimGridParam{sim::PolicyKind::Fcfs, sim::BackfillKind::Easy},
        SimGridParam{sim::PolicyKind::Fcfs, sim::BackfillKind::Conservative},
        SimGridParam{sim::PolicyKind::Fcfs, sim::BackfillKind::Relaxed},
        SimGridParam{sim::PolicyKind::Fcfs,
                     sim::BackfillKind::AdaptiveRelaxed},
        SimGridParam{sim::PolicyKind::Sjf, sim::BackfillKind::Easy},
        SimGridParam{sim::PolicyKind::Wfp3, sim::BackfillKind::Easy},
        SimGridParam{sim::PolicyKind::Unicep, sim::BackfillKind::Relaxed},
        SimGridParam{sim::PolicyKind::Saf,
                     sim::BackfillKind::AdaptiveRelaxed}),
    grid_name);

// --------------------------------- generator invariants over seed sweep ---

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, PhysicalConsistency) {
  synth::GeneratorOptions options;
  options.seed = GetParam();
  options.duration_days = 1.5;
  for (const char* system : {"Mira", "Philly"}) {
    const auto trace = synth::generate_system(system, options);
    EXPECT_TRUE(trace.is_sorted_by_submit());
    const double horizon = 1.5 * 86400.0;
    for (const auto& j : trace.jobs()) {
      EXPECT_GE(j.submit_time, 0.0);
      EXPECT_LT(j.submit_time, horizon);
      EXPECT_GT(j.run_time, 0.0);
      EXPECT_GE(j.wait_time, 0.0);
      EXPECT_GE(j.cores, 1u);
      EXPECT_LE(j.cores, trace.spec().primary_capacity());
      if (j.has_requested_time()) {
        EXPECT_GE(j.requested_time * 1.0001, j.run_time);
      }
    }
  }
}

TEST_P(GeneratorProperty, StatusFractionsBounded) {
  synth::GeneratorOptions options;
  options.seed = GetParam();
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("BlueWaters", options);
  std::array<std::size_t, 3> counts{};
  for (const auto& j : trace.jobs()) {
    counts[static_cast<std::size_t>(j.status)]++;
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_GT(counts[0] / n, 0.4);   // Passed majority
  EXPECT_GT(counts[2] / n, 0.05);  // Killed present
  EXPECT_GT(counts[1], 0u);        // Failed present
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace lumos
