// Failpoint tests: prove the library degrades gracefully when its error
// paths are forced. Registry semantics are testable in every build; the
// tests that need compiled-in LUMOS_FAILPOINT sites (parsers, ThreadPool,
// obs JSON writer) skip themselves in builds without LUMOS_FAILPOINTS
// (the failpoints/sanitize/tsan presets enable it).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/failpoint.hpp"
#include "obs/json.hpp"
#include "stream/checkpoint.hpp"
#include "stream/ingest.hpp"
#include "stream/source.hpp"
#include "synth/generator.hpp"
#include "trace/csv_formats.hpp"
#include "trace/swf.hpp"
#include "trace/system_spec.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lumos {
namespace {

#ifdef LUMOS_FAILPOINTS
constexpr bool kFailpointsCompiled = true;
#else
constexpr bool kFailpointsCompiled = false;
#endif

#define SKIP_WITHOUT_FAILPOINT_SITES()                                   \
  do {                                                                   \
    if (!kFailpointsCompiled) {                                          \
      GTEST_SKIP() << "built without LUMOS_FAILPOINTS; run the "         \
                      "failpoints/sanitize/tsan presets";                \
    }                                                                    \
  } while (false)

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FailpointRegistry::global().reset(); }
  void TearDown() override { fault::FailpointRegistry::global().reset(); }
};

const char* kSwfRow = "1 0 10 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1\n";

std::string two_swf_rows() {
  return std::string(kSwfRow) +
         "2 5 10 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1\n";
}

const char* kCsvHeader =
    "id,user,submit,wait,run,requested_time,nodes,cores,kind,status,vc\n";

// ----------------------------------------------------- registry semantics --

TEST_F(FailpointTest, RegistryArmsFiresAndDisarms) {
  auto& reg = fault::FailpointRegistry::global();
  EXPECT_FALSE(reg.should_fire("site"));  // unarmed: never fires
  EXPECT_EQ(reg.evaluations("site"), 1u);

  reg.arm("site");  // fire on next evaluation, then auto-disarm
  EXPECT_TRUE(reg.should_fire("site"));
  EXPECT_FALSE(reg.should_fire("site"));
  EXPECT_EQ(reg.evaluations("site"), 3u);
  EXPECT_EQ(reg.fired("site"), 1u);
}

TEST_F(FailpointTest, RegistryHonorsSkipAndFireCounts) {
  auto& reg = fault::FailpointRegistry::global();
  reg.arm("site", {.skip = 2, .fire = 2});
  EXPECT_FALSE(reg.should_fire("site"));
  EXPECT_FALSE(reg.should_fire("site"));
  EXPECT_TRUE(reg.should_fire("site"));
  EXPECT_TRUE(reg.should_fire("site"));
  EXPECT_FALSE(reg.should_fire("site"));  // exhausted, auto-disarmed
  EXPECT_EQ(reg.fired("site"), 2u);
}

TEST_F(FailpointTest, RegistryFireZeroMeansUnlimited) {
  auto& reg = fault::FailpointRegistry::global();
  reg.arm("site", {.skip = 0, .fire = 0});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(reg.should_fire("site"));
  reg.disarm("site");
  EXPECT_FALSE(reg.should_fire("site"));
  EXPECT_EQ(reg.fired("site"), 10u);
}

TEST_F(FailpointTest, InjectedFaultIsATypedLumosError) {
  try {
    fault::throw_injected("some.site");
    FAIL() << "throw_injected returned";
  } catch (const Error& e) {  // must be catchable as the base type
    EXPECT_NE(std::string(e.what()).find("some.site"), std::string::npos);
  }
}

// -------------------------------------------------------- parser sites --

TEST_F(FailpointTest, SwfRowFailpointPropagatesTyped) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  fault::FailpointRegistry::global().arm("trace.swf.row");
  std::istringstream in(kSwfRow);
  EXPECT_THROW(trace::read_swf(in, trace::theta_spec()),
               fault::InjectedFault);
  EXPECT_EQ(fault::FailpointRegistry::global().fired("trace.swf.row"), 1u);
}

TEST_F(FailpointTest, SwfInjectedFaultIsNeverBudgeted) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  // A lenient bad-row budget swallows ParseErrors — but an injected fault
  // is a library failure, not a malformed row, and must still propagate.
  fault::FailpointRegistry::global().arm("trace.swf.row");
  trace::ParseOptions opts;
  opts.bad_row_budget = 100;
  trace::ParseAudit audit;
  std::istringstream in(two_swf_rows());
  EXPECT_THROW(trace::read_swf(in, trace::theta_spec(), opts, &audit),
               fault::InjectedFault);
  EXPECT_TRUE(audit.skipped_lines.empty());
}

TEST_F(FailpointTest, SwfSkipCountReachesLaterRows) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  auto& reg = fault::FailpointRegistry::global();
  reg.arm("trace.swf.row", {.skip = 1, .fire = 1});
  std::istringstream in(two_swf_rows());
  EXPECT_THROW(trace::read_swf(in, trace::theta_spec()),
               fault::InjectedFault);
  EXPECT_EQ(reg.evaluations("trace.swf.row"), 2u);  // row 1 passed
  EXPECT_EQ(reg.fired("trace.swf.row"), 1u);
}

TEST_F(FailpointTest, SwfOpenFailpointPropagatesTyped) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  fault::FailpointRegistry::global().arm("trace.swf.open");
  EXPECT_THROW(trace::read_swf_file("/nonexistent.swf", trace::theta_spec()),
               fault::InjectedFault);
}

TEST_F(FailpointTest, CsvRowFailpointPropagatesTypedDespiteBudget) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  fault::FailpointRegistry::global().arm("trace.csv.row");
  trace::ParseOptions opts;
  opts.bad_row_budget = 100;
  std::istringstream in(std::string(kCsvHeader) +
                        "1,2,0,5,100,200,1,4,cpu,pass,-1\n");
  EXPECT_THROW(trace::read_lumos_csv(in, trace::philly_spec(), opts),
               fault::InjectedFault);
}

TEST_F(FailpointTest, CsvOpenFailpointPropagatesTyped) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  fault::FailpointRegistry::global().arm("trace.csv.open");
  EXPECT_THROW(
      trace::read_lumos_csv_file("/nonexistent.csv", trace::philly_spec()),
      fault::InjectedFault);
}

// ----------------------------------------------------- ThreadPool site --

TEST_F(FailpointTest, ThreadPoolTaskFaultSurfacesOnFuture) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  util::ThreadPool pool(2);
  fault::FailpointRegistry::global().arm("util.thread_pool.task");
  auto doomed = pool.submit([] { return 1; });
  EXPECT_THROW(doomed.get(), fault::InjectedFault);
  // One-shot arming auto-disarms: the pool stays fully usable.
  auto fine = pool.submit([] { return 2; });
  EXPECT_EQ(fine.get(), 2);
}

TEST_F(FailpointTest, ThreadPoolParallelForRethrowsInjectedFault) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  util::ThreadPool pool(2);
  fault::FailpointRegistry::global().arm("util.thread_pool.task");
  EXPECT_THROW(pool.parallel_for(0, 64, [](std::size_t) {}),
               fault::InjectedFault);
  // The pool drains and keeps working after the failure.
  pool.parallel_for(0, 8, [](std::size_t) {});
}

// ------------------------------------------------------ JSON writer site --

TEST_F(FailpointTest, JsonWriterFaultLeavesNoTruncatedFile) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  const auto path = std::filesystem::temp_directory_path() /
                    "lumos_failpoint_test.json";
  std::filesystem::remove(path);
  fault::FailpointRegistry::global().arm("obs.write_json");
  obs::Json doc = obs::Json::object();
  doc["key"] = 1;
  EXPECT_THROW(obs::write_json(doc, path.string()), fault::InjectedFault);
  // Graceful degradation: no partially written file left behind.
  EXPECT_FALSE(std::filesystem::exists(path));
  obs::write_json(doc, path.string());  // disarmed: now succeeds
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, AtomicJsonWriterSharesTheWriteJsonSite) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  const auto path = std::filesystem::temp_directory_path() /
                    "lumos_failpoint_atomic.json";
  std::filesystem::remove(path);
  fault::FailpointRegistry::global().arm("obs.write_json");
  obs::Json doc = obs::Json::object();
  doc["key"] = 1;
  EXPECT_THROW(obs::write_json_atomic(doc, path.string()),
               fault::InjectedFault);
  // The fault fires before the temp file is even created: neither the
  // target nor a stale `.tmp.` sibling may exist.
  EXPECT_FALSE(std::filesystem::exists(path));
  for (const auto& entry : std::filesystem::directory_iterator(
           path.parent_path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_NE(name.rfind(path.filename().string() + ".tmp", 0), 0u)
        << "stale temp file: " << name;
  }
  obs::write_json_atomic(doc, path.string());  // disarmed: now succeeds
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

// ------------------------------------------------- stream source sites --

TEST_F(FailpointTest, SourceOpenFailpointPropagatesTyped) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  fault::FailpointRegistry::global().arm("stream.source.open");
  EXPECT_THROW((void)stream::open_event_source("-"), fault::InjectedFault);
}

TEST_F(FailpointTest, SourceReadFaultIsNeverRetried) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  // RetryingSource retries transient SourceErrors — but an injected fault
  // is a library failure and must surface immediately, with zero sleeps.
  const auto path = std::filesystem::temp_directory_path() /
                    "lumos_failpoint_source.swf";
  {
    std::ofstream out(path);
    out << kSwfRow;
  }
  std::size_t sleeps = 0;
  stream::RetryPolicy policy;
  policy.sleep = [&](double) { ++sleeps; };
  stream::RetryingSource source(stream::open_event_source(path.string()),
                                policy);
  fault::FailpointRegistry::global().arm("stream.source.read");
  char buf[64];
  EXPECT_THROW((void)source.read_some(buf, sizeof(buf)),
               fault::InjectedFault);
  EXPECT_EQ(sleeps, 0u);
  EXPECT_EQ(source.retries(), 0u);
  // One-shot arming auto-disarms: the source keeps working.
  const auto r = source.read_some(buf, sizeof(buf));
  EXPECT_EQ(r.status, stream::ReadStatus::Data);
  std::filesystem::remove(path);
}

// ---------------------------------------------- stream checkpoint sites --

TEST_F(FailpointTest, CheckpointLoadFaultPropagatesTyped) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  fault::FailpointRegistry::global().arm("stream.checkpoint.load");
  EXPECT_THROW((void)stream::load_checkpoint("/nonexistent/ck.json"),
               fault::InjectedFault);
}

TEST_F(FailpointTest, TornCheckpointWriteLeavesPriorStateResumable) {
  SKIP_WITHOUT_FAILPOINT_SITES();
  // The satellite drill: a fault at the checkpoint-write site mid-run must
  // leave the on-disk checkpoint exactly as it was (the failpoint sits
  // before the .prev rotation), so the next start resumes from the last
  // good state and still reproduces the uninterrupted report.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "lumos_failpoint_torn_ck";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string swf = (dir / "stream.swf").string();
  const std::string ck = (dir / "ck.json").string();

  synth::GeneratorOptions gen;
  gen.seed = 77;
  gen.duration_days = 3.0;
  const auto trace = synth::generate_system("Theta", gen);
  trace::write_swf_file(swf, trace);
  const std::uint64_t total = trace.size();
  ASSERT_GT(total, 200u);

  stream::IngestOptions options;
  options.input_path = swf;
  options.config.epoch_unix = trace.spec().epoch_unix;
  options.config.utc_offset_hours = trace.spec().utc_offset_hours;
  options.report_every_events = 0;
  const auto baseline = stream::run_ingest(options);

  options.checkpoint_path = ck;
  options.checkpoint_every_events = 50;
  options.max_events = 100;
  (void)stream::run_ingest(options);

  std::string before;
  {
    std::ifstream in(ck, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    before = buf.str();
  }

  fault::FailpointRegistry::global().arm("stream.checkpoint.write");
  options.max_events = 0;
  EXPECT_THROW((void)stream::run_ingest(options), fault::InjectedFault);

  std::string after;
  {
    std::ifstream in(ck, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    after = buf.str();
  }
  EXPECT_EQ(before, after) << "faulted write touched the checkpoint";

  // Unarmed rerun resumes from the untouched checkpoint and converges on
  // the uninterrupted result.
  const auto recovered = stream::run_ingest(options);
  EXPECT_EQ(recovered.events, total);
  EXPECT_EQ(recovered.resumed_events, 100u);
  const obs::Json base_doc = stream::make_report_document(baseline, "t");
  const obs::Json rec_doc = stream::make_report_document(recovered, "t");
  const auto* a = base_doc.find("lumos_serve");
  const auto* b = rec_doc.find("lumos_serve");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a->find("metrics"), *b->find("metrics"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace lumos
