// Unit tests for the scheduling simulator: profile, cluster, policies,
// backfill strategies and end-to-end scheduling semantics on hand-crafted
// traces with exactly known outcomes.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/auditor.hpp"
#include "sim/backfill.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lumos::sim {
namespace {

trace::SystemSpec tiny_spec(std::uint32_t cores, int vcs = 0) {
  trace::SystemSpec spec;
  spec.name = "Tiny";
  spec.nodes = cores;
  spec.cores = cores;
  spec.primary_kind = trace::ResourceKind::Cpu;
  spec.virtual_clusters = vcs;
  spec.has_walltime_estimates = true;
  return spec;
}

trace::Job job(double submit, double run, std::uint32_t cores,
               double requested = -1.0, std::int32_t vc = -1) {
  trace::Job j;
  j.submit_time = submit;
  j.run_time = run;
  j.cores = cores;
  j.requested_time = requested > 0 ? requested : run;
  j.virtual_cluster = vc;
  return j;
}

trace::Trace make_trace(std::uint32_t capacity, std::vector<trace::Job> jobs,
                        int vcs = 0) {
  trace::Trace t(tiny_spec(capacity, vcs), std::move(jobs));
  t.sort_by_submit();
  return t;
}

// -------------------------------------------------------------- Cluster --

TEST(Cluster, AllocateRelease) {
  Cluster c(100);
  EXPECT_EQ(c.total_capacity(), 100u);
  EXPECT_TRUE(c.allocate(60));
  EXPECT_EQ(c.free(), 40u);
  EXPECT_FALSE(c.allocate(41));
  EXPECT_EQ(c.free(), 40u);  // failed allocation changes nothing
  c.release(60);
  EXPECT_EQ(c.free(), 100u);
}

TEST(Cluster, FromSpecSplitsVirtualClusters) {
  auto spec = tiny_spec(100, 3);
  const auto c = Cluster::from_spec(spec);
  EXPECT_EQ(c.partitions(), 3u);
  EXPECT_EQ(c.total_capacity(), 100u);
  EXPECT_EQ(c.capacity(0), 34u);  // remainder spread over first partitions
  EXPECT_EQ(c.capacity(2), 33u);
}

TEST(Cluster, PartitionForMapsVc) {
  const auto c = Cluster::from_spec(tiny_spec(100, 4));
  EXPECT_EQ(c.partition_for(-1), 0u);
  EXPECT_EQ(c.partition_for(2), 2u);
  EXPECT_EQ(c.partition_for(6), 2u);  // wraps
}

TEST(Cluster, RejectsZeroCapacity) {
  EXPECT_THROW(Cluster(std::vector<std::uint64_t>{0}), InvalidArgument);
}

// -------------------------------------------------------------- Profile --

TEST(Profile, StartsFullyFree) {
  const ResourceProfile p(0.0, 10);
  EXPECT_EQ(p.free_at(0.0), 10u);
  EXPECT_EQ(p.free_at(1e9), 10u);
  EXPECT_DOUBLE_EQ(p.earliest_start(0.0, 100.0, 10), 0.0);
}

TEST(Profile, ReserveCreatesSteps) {
  ResourceProfile p(0.0, 10);
  p.reserve(5.0, 15.0, 4);
  EXPECT_EQ(p.free_at(0.0), 10u);
  EXPECT_EQ(p.free_at(5.0), 6u);
  EXPECT_EQ(p.free_at(14.9), 6u);
  EXPECT_EQ(p.free_at(15.0), 10u);
}

TEST(Profile, EarliestStartWaitsForRelease) {
  ResourceProfile p(0.0, 10);
  p.reserve(0.0, 100.0, 8);  // only 2 free until t=100
  EXPECT_DOUBLE_EQ(p.earliest_start(0.0, 50.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(p.earliest_start(0.0, 50.0, 3), 100.0);
}

TEST(Profile, EarliestStartNeedsContinuousWindow) {
  ResourceProfile p(0.0, 10);
  p.reserve(50.0, 60.0, 9);  // a spike at t=50
  // 5 cores for 100s cannot fit before the spike; must wait until t=60.
  EXPECT_DOUBLE_EQ(p.earliest_start(0.0, 100.0, 5), 60.0);
  // 1 core fits through the spike.
  EXPECT_DOUBLE_EQ(p.earliest_start(0.0, 100.0, 1), 0.0);
}

TEST(Profile, OversizedNeverFits) {
  const ResourceProfile p(0.0, 10);
  EXPECT_GE(p.earliest_start(0.0, 1.0, 11), kTimeInfinity);
}

TEST(Profile, ReserveClampsAtZero) {
  ResourceProfile p(0.0, 10);
  p.reserve(0.0, 10.0, 15);  // over-reserve clamps
  EXPECT_EQ(p.free_at(5.0), 0u);
}

// --------------------------------------------------------------- Policy --

TEST(Policy, FcfsOrdersBySubmit) {
  PolicyJobView a{10.0, 0.0, 100.0, 1};
  PolicyJobView b{20.0, 0.0, 1.0, 1};
  EXPECT_LT(policy_score(PolicyKind::Fcfs, a),
            policy_score(PolicyKind::Fcfs, b));
}

TEST(Policy, SjfPrefersShortRequests) {
  PolicyJobView a{0.0, 0.0, 100.0, 1};
  PolicyJobView b{0.0, 0.0, 50.0, 1};
  EXPECT_LT(policy_score(PolicyKind::Sjf, b),
            policy_score(PolicyKind::Sjf, a));
}

TEST(Policy, Wfp3FavoursLongWaiters) {
  PolicyJobView waited{0.0, 1000.0, 100.0, 4};
  PolicyJobView fresh{0.0, 10.0, 100.0, 4};
  EXPECT_LT(policy_score(PolicyKind::Wfp3, waited),
            policy_score(PolicyKind::Wfp3, fresh));
}

TEST(Policy, SafPrefersSmallArea) {
  PolicyJobView small{0.0, 0.0, 10.0, 2};
  PolicyJobView big{0.0, 0.0, 10.0, 200};
  EXPECT_LT(policy_score(PolicyKind::Saf, small),
            policy_score(PolicyKind::Saf, big));
}

TEST(Policy, ParseRoundTrip) {
  for (auto p : {PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::Wfp3,
                 PolicyKind::Unicep, PolicyKind::Saf}) {
    EXPECT_EQ(policy_from_string(std::string(to_string(p))), p);
  }
  EXPECT_THROW((void)policy_from_string("bogus"), InvalidArgument);
}

// ------------------------------------------------------------- Backfill --

TEST(Backfill, ParseRoundTrip) {
  for (auto b : {BackfillKind::None, BackfillKind::Easy,
                 BackfillKind::Conservative, BackfillKind::Relaxed,
                 BackfillKind::AdaptiveRelaxed}) {
    EXPECT_EQ(backfill_from_string(to_string(b)), b);
  }
  EXPECT_THROW((void)backfill_from_string("wat"), InvalidArgument);
}

TEST(Backfill, EffectiveFactorShapes) {
  BackfillConfig config;
  config.relax_factor = 0.10;
  config.kind = BackfillKind::Relaxed;
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 5, 10), 0.10);

  config.kind = BackfillKind::AdaptiveRelaxed;
  config.adaptive_shape = AdaptiveShape::Linear;
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 5, 10), 0.05);  // Eq. (1)
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 10, 10), 0.10);
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 20, 10), 0.10);  // clamped

  config.adaptive_shape = AdaptiveShape::Quadratic;
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 5, 10), 0.025);
  config.adaptive_shape = AdaptiveShape::Sqrt;
  EXPECT_NEAR(effective_relax_factor(config, 5, 10), 0.10 / std::sqrt(2.0),
              1e-12);

  config.kind = BackfillKind::Easy;
  EXPECT_DOUBLE_EQ(effective_relax_factor(config, 5, 10), 0.0);
}

// ------------------------------------------------------------ Simulator --

TEST(Simulator, FcfsSequentialWhenFull) {
  // Capacity 10; two 10-core jobs: second waits for the first.
  auto t = make_trace(10, {job(0, 100, 10), job(1, 50, 10)});
  const auto r = simulate(t, SimConfig{});
  EXPECT_DOUBLE_EQ(r.outcomes[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.makespan, 150.0);
}

TEST(Simulator, ParallelWhenFits) {
  auto t = make_trace(10, {job(0, 100, 4), job(0, 100, 4)});
  const auto r = simulate(t, SimConfig{});
  EXPECT_DOUBLE_EQ(r.outcomes[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 0.0);
}

TEST(Simulator, NoBackfillBlocksBehindHead) {
  // Job0 uses 8/10 cores for 100s. Job1 needs 4 (blocked). Job2 needs 1
  // and could run, but backfill=None must keep it behind job1.
  auto t = make_trace(10, {job(0, 100, 8), job(1, 10, 4), job(2, 10, 1)});
  SimConfig config;
  config.backfill.kind = BackfillKind::None;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);
  EXPECT_GE(r.outcomes[2].start_time, 100.0);
  EXPECT_EQ(r.backfilled_jobs, 0u);
}

TEST(Simulator, EasyBackfillsShortJob) {
  // Same setup; EASY lets job2 (1 core, ends before job0) jump ahead.
  auto t = make_trace(10, {job(0, 100, 8), job(1, 10, 4), job(2, 10, 1)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Easy;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[2].start_time, 2.0);  // backfilled at arrival
  EXPECT_TRUE(r.outcomes[2].backfilled);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);  // head not delayed
  EXPECT_EQ(r.backfilled_jobs, 1u);
}

TEST(Simulator, EasyRefusesDelayingBackfill) {
  // Candidate runs past the shadow and does not fit in extra cores.
  // Job0: 8 cores 100s. Head job1: 4 cores => shadow t=100, extra = 10-4=6?
  // free at shadow = 10 (job0 done) => extra = 6. Candidate needs 7 cores,
  // 200 s => neither ends before shadow nor fits extra: must NOT start.
  auto t = make_trace(10, {job(0, 100, 8), job(1, 10, 4), job(2, 200, 7)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Easy;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);
  EXPECT_GE(r.outcomes[2].start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].reservation_delay(), 0.0);
}

TEST(Simulator, EasyAllowsExtraCoreBackfill) {
  // Candidate runs long but fits in cores the head will not need.
  auto t = make_trace(10, {job(0, 100, 8), job(1, 10, 4), job(2, 500, 2)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Easy;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[2].start_time, 2.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);  // still on time
}

TEST(Simulator, EasyNeverViolatesUnderFcfs) {
  auto t = make_trace(16, {job(0, 100, 12), job(1, 300, 8), job(2, 50, 4),
                           job(3, 80, 2), job(4, 400, 16), job(5, 10, 1)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Easy;
  const auto r = simulate(t, config);
  const auto m = compute_metrics(t, r);
  EXPECT_EQ(m.violated_jobs, 0u);
}

TEST(Simulator, RelaxedCanDelayHeadWithinAllowance) {
  // Force a relaxed-only backfill: job0 holds 8/10 cores until t=100; the
  // head (job1) needs all 10 (shadow = 100, extra = 0). The candidate
  // (2 cores, 150 s) arrives at t=90 after the head has waited 89 s, so a
  // factor-10 allowance (890 s) admits it even though it pushes the head
  // to t=240.
  auto t = make_trace(10, {job(0, 100, 8), job(1, 100, 10),
                           job(90, 150, 2)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Relaxed;
  config.backfill.relax_factor = 10.0;
  const auto r = simulate(t, config);
  EXPECT_TRUE(r.outcomes[2].backfilled);
  EXPECT_DOUBLE_EQ(r.outcomes[2].start_time, 90.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 240.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].reservation_delay(), 140.0);
}

TEST(Simulator, ConservativeStartsReservedJobs) {
  auto t = make_trace(10, {job(0, 100, 8), job(1, 10, 4), job(2, 10, 1)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Conservative;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[2].start_time, 2.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);
}

TEST(Simulator, ConservativeLabelsBackfillsAgainstPassHead) {
  // Regression: two jobs start in the same conservative pass. The head of
  // the pass (job0) is not a backfill; job1, which starts alongside it, is.
  // The old loop compared each job against queue.front() *after* earlier
  // erasures, so job1 saw itself at the front and was mislabeled.
  auto t = make_trace(10, {job(0, 100, 4), job(0, 100, 4)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Conservative;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 0.0);
  EXPECT_FALSE(r.outcomes[0].backfilled);
  EXPECT_TRUE(r.outcomes[1].backfilled);
  EXPECT_EQ(r.backfilled_jobs, 1u);
}

TEST(Simulator, ConservativeLabelsWhenHeadBlocked) {
  // When the head stays blocked, every job that starts around it is a
  // backfill — unchanged from the old labeling.
  auto t = make_trace(10, {job(0, 100, 8), job(1, 300, 4), job(2, 10, 1),
                           job(2, 10, 1)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Conservative;
  const auto r = simulate(t, config);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);  // blocked head
  EXPECT_TRUE(r.outcomes[2].backfilled);
  EXPECT_TRUE(r.outcomes[3].backfilled);
  EXPECT_EQ(r.backfilled_jobs, 2u);
}

TEST(Simulator, OversizedJobSkipped) {
  auto t = make_trace(10, {job(0, 10, 20), job(1, 10, 5)});
  const auto r = simulate(t, SimConfig{});
  EXPECT_FALSE(r.outcomes[0].started());
  EXPECT_TRUE(r.outcomes[1].started());
  EXPECT_EQ(r.skipped_oversized, 1u);
}

TEST(Simulator, VirtualClustersIsolate) {
  // 2 VCs of 5 cores each. Two 5-core jobs in VC0 must serialise even
  // though VC1 sits idle (the Philly fragmentation effect).
  auto t = make_trace(10, {job(0, 100, 5, -1, 0), job(1, 100, 5, -1, 0)}, 2);
  const auto r = simulate(t, SimConfig{});
  EXPECT_DOUBLE_EQ(r.outcomes[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 100.0);
}

TEST(Simulator, PlanningUsesWalltimeNotOracle) {
  // Job0 requests 1000s but actually runs 10s. EASY computes the shadow at
  // t=1000, so a 500s candidate can backfill immediately; it then finishes
  // long before the pessimistic plan.
  auto t = make_trace(10, {job(0, 10, 8, 1000), job(1, 10, 4, 1000),
                           job(2, 500, 2, 500)});
  SimConfig config;
  config.backfill.kind = BackfillKind::Easy;
  const auto r = simulate(t, config);
  EXPECT_TRUE(r.outcomes[2].backfilled);
  // Head starts when job0 actually ends (t=10), earlier than its promise.
  EXPECT_DOUBLE_EQ(r.outcomes[1].start_time, 10.0);
}

TEST(Simulator, QueueSeriesRecorded) {
  auto t = make_trace(10, {job(0, 100, 10), job(1, 10, 10), job(2, 10, 10)});
  SimConfig config;
  config.record_queue_series = true;
  const auto r = simulate(t, config);
  EXPECT_FALSE(r.queue_series.empty());
  EXPECT_GE(r.max_queue_length, 2u);
}

TEST(Simulator, RequiresSortedTrace) {
  trace::Trace t(tiny_spec(10));
  t.add(job(10, 1, 1));
  t.add(job(0, 1, 1));
  EXPECT_THROW(Simulator(t, SimConfig{}), InvalidArgument);
}

TEST(Simulator, EmptyTrace) {
  auto t = make_trace(10, {});
  const auto r = simulate(t, SimConfig{});
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

// -------------------------------------------------- Auditor & counters --

TEST(Auditor, PassesOnEverySeedConfig) {
  // The invariant auditor (core accounting, queue accounting, disjointness,
  // incremental-profile equivalence) must hold after every event for every
  // policy × backfill combination on a realistic workload.
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("Theta", options);
  for (auto p : {PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::Wfp3,
                 PolicyKind::Unicep, PolicyKind::Saf}) {
    for (auto b : {BackfillKind::None, BackfillKind::Easy,
                   BackfillKind::Conservative, BackfillKind::Relaxed,
                   BackfillKind::AdaptiveRelaxed}) {
      SimConfig config;
      config.policy = p;
      config.backfill.kind = b;
      config.audit = true;
      SimResult r;
      ASSERT_NO_THROW(r = simulate(trace, config))
          << to_string(p) << "/" << to_string(b);
      EXPECT_GT(r.counters.audits, 0u);
      EXPECT_EQ(r.counters.audit_failures, 0u);
    }
  }
}

TEST(Auditor, AuditedRunMatchesUnauditedRun) {
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("BlueWaters", options);
  SimConfig config;
  config.backfill.kind = BackfillKind::AdaptiveRelaxed;
  const auto plain = simulate(trace, config);
  config.audit = true;
  const auto audited = simulate(trace, config);
  ASSERT_EQ(plain.outcomes.size(), audited.outcomes.size());
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    EXPECT_EQ(plain.outcomes[i].start_time, audited.outcomes[i].start_time);
    EXPECT_EQ(plain.outcomes[i].first_reservation,
              audited.outcomes[i].first_reservation);
    EXPECT_EQ(plain.outcomes[i].backfilled, audited.outcomes[i].backfilled);
  }
}

TEST(Auditor, DetectsQueuedAndRunningOverlap) {
  SimCounters counters;
  SimAuditor auditor(counters, /*jobs=*/4);
  Cluster cluster(10);
  ASSERT_TRUE(cluster.allocate(4));
  RunningJob r;
  r.cores = 4;
  r.index = 0;
  std::vector<std::vector<RunningJob>> running{{r}};
  std::vector<std::vector<std::uint32_t>> queues{{0u}};  // same job queued
  EXPECT_THROW(auditor.check(cluster, queues, running, 1), InternalError);
  EXPECT_EQ(counters.audit_failures, 1u);
}

TEST(Auditor, DetectsCoreAccountingDrift) {
  SimCounters counters;
  SimAuditor auditor(counters, /*jobs=*/4, /*fatal=*/false);
  Cluster cluster(10);
  ASSERT_TRUE(cluster.allocate(6));  // cluster says 6 allocated...
  RunningJob r;
  r.cores = 4;  // ...but the running set only accounts for 4
  r.index = 1;
  std::vector<std::vector<RunningJob>> running{{r}};
  std::vector<std::vector<std::uint32_t>> queues{{}};
  auditor.check(cluster, queues, running, 0);  // non-fatal: counts only
  EXPECT_EQ(counters.audit_failures, 1u);
}

TEST(Auditor, DetectsQueueTallyMismatch) {
  SimCounters counters;
  SimAuditor auditor(counters, /*jobs=*/4);
  Cluster cluster(10);
  std::vector<std::vector<RunningJob>> running{{}};
  std::vector<std::vector<std::uint32_t>> queues{{2u, 3u}};
  EXPECT_THROW(auditor.check(cluster, queues, running, 5), InternalError);
  EXPECT_NO_THROW(auditor.check(cluster, queues, running, 2));
  EXPECT_EQ(counters.audit_failures, 1u);
}

TEST(Counters, TrackEventsAndSorts) {
  auto t = make_trace(10, {job(0, 100, 10), job(1, 10, 10), job(2, 10, 4),
                           job(3, 10, 4)});
  SimConfig config;  // FCFS never sorts
  const auto r = simulate(t, config);
  EXPECT_EQ(r.counters.arrivals, 4u);
  EXPECT_EQ(r.counters.completions, 4u);
  EXPECT_EQ(r.counters.events, 8u);
  EXPECT_EQ(r.counters.sort_invocations, 0u);
  EXPECT_GT(r.counters.scheduling_passes, 0u);

  config.policy = PolicyKind::Sjf;
  const auto sorted = simulate(t, config);
  EXPECT_GT(sorted.counters.sort_invocations, 0u);
  // Sorts only happen when membership changed, so passes bound them.
  EXPECT_LE(sorted.counters.sort_invocations,
            sorted.counters.scheduling_passes);
}

TEST(Counters, ProfileCacheServesRepeatPasses) {
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("Theta", options);
  SimConfig config;
  config.backfill.kind = BackfillKind::Conservative;
  const auto r = simulate(trace, config);
  EXPECT_GT(r.counters.profile_rebuilds, 0u);
  EXPECT_GT(r.counters.profile_cache_hits, 0u);
  EXPECT_EQ(r.counters.audits, 0u);  // audit off by default
}

// ------------------------------------------------------------ Determinism --

TEST(Determinism, RepeatedRunsBitIdentical) {
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("Theta", options);
  for (auto b : {BackfillKind::Easy, BackfillKind::Conservative,
                 BackfillKind::AdaptiveRelaxed}) {
    SimConfig config;
    config.policy = PolicyKind::Sjf;
    config.backfill.kind = b;
    const auto a = simulate(trace, config);
    const auto c = simulate(trace, config);
    ASSERT_EQ(a.outcomes.size(), c.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      ASSERT_EQ(a.outcomes[i].start_time, c.outcomes[i].start_time);
      ASSERT_EQ(a.outcomes[i].first_reservation,
                c.outcomes[i].first_reservation);
      ASSERT_EQ(a.outcomes[i].backfilled, c.outcomes[i].backfilled);
    }
    EXPECT_EQ(a.backfilled_jobs, c.backfilled_jobs);
    EXPECT_EQ(a.makespan, c.makespan);
  }
}

TEST(Determinism, IdenticalAcrossThreadPoolSizes) {
  // The bench drivers fan simulations out over a ThreadPool; the outcomes
  // must not depend on the pool size or scheduling.
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("Theta", options);
  const std::vector<BackfillKind> kinds{
      BackfillKind::None, BackfillKind::Easy, BackfillKind::Conservative,
      BackfillKind::Relaxed, BackfillKind::AdaptiveRelaxed};
  auto run_with_pool = [&](std::size_t threads) {
    std::vector<SimResult> results(kinds.size());
    util::ThreadPool pool(threads);
    pool.parallel_for(0, kinds.size(), [&](std::size_t i) {
      SimConfig config;
      config.backfill.kind = kinds[i];
      results[i] = simulate(trace, config);
    });
    return results;
  };
  const auto serial = run_with_pool(1);
  const auto wide = run_with_pool(4);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    ASSERT_EQ(serial[k].outcomes.size(), wide[k].outcomes.size());
    for (std::size_t i = 0; i < serial[k].outcomes.size(); ++i) {
      ASSERT_EQ(serial[k].outcomes[i].start_time,
                wide[k].outcomes[i].start_time);
      ASSERT_EQ(serial[k].outcomes[i].first_reservation,
                wide[k].outcomes[i].first_reservation);
      ASSERT_EQ(serial[k].outcomes[i].backfilled,
                wide[k].outcomes[i].backfilled);
    }
  }
}

// -------------------------------------------------------------- Metrics --

TEST(Metrics, ComputesExactValues) {
  auto t = make_trace(10, {job(0, 100, 10), job(0, 100, 10)});
  const auto r = simulate(t, SimConfig{});
  const auto m = compute_metrics(t, r);
  EXPECT_EQ(m.jobs, 2u);
  // starts at 0 and 100 -> waits 0 and 100.
  EXPECT_DOUBLE_EQ(m.avg_wait, 50.0);
  // bslds: 1.0 and (100+100)/100 = 2.0.
  EXPECT_DOUBLE_EQ(m.avg_bounded_slowdown, 1.5);
  // busy = 2*10*100 = 2000 core-s over 10 cores * 200 s.
  EXPECT_DOUBLE_EQ(m.utilization, 1.0);
  EXPECT_DOUBLE_EQ(m.makespan, 200.0);
  EXPECT_FALSE(m.to_string().empty());
}

TEST(Metrics, MismatchedResultThrows) {
  auto t = make_trace(10, {job(0, 1, 1)});
  SimResult r;
  EXPECT_THROW((void)compute_metrics(t, r), InvalidArgument);
}

// ----------------------------------------------------------- EventQueue --

struct TestEvent {
  EventKey k;
  [[nodiscard]] EventKey key() const noexcept { return k; }
};

TEST(EventQueue, ComparatorIsTheDocumentedTotalOrder) {
  // time, then kind Finish < Arrive < Fail, then id, then seq.
  const EventKey base{10.0, EventKind::Arrive, 5, 1};
  EXPECT_TRUE(event_before({9.0, EventKind::Fail, 99, 99}, base));
  EXPECT_TRUE(event_before({10.0, EventKind::Finish, 99, 99}, base));
  EXPECT_FALSE(event_before({10.0, EventKind::Fail, 0, 0}, base));
  EXPECT_TRUE(event_before({10.0, EventKind::Arrive, 4, 99}, base));
  EXPECT_TRUE(event_before({10.0, EventKind::Arrive, 5, 0}, base));
  EXPECT_FALSE(event_before(base, base));  // irreflexive
}

TEST(EventQueue, SameTimestampTiesPopInKindThenIdOrder) {
  // Regression for the pre-EventQueue behaviour where same-instant ties
  // fell to heap insertion order: push in scrambled order, expect the
  // documented order back — from BOTH backends.
  const std::vector<EventKey> expected = {
      {5.0, EventKind::Finish, 1, 0}, {5.0, EventKind::Finish, 2, 0},
      {5.0, EventKind::Arrive, 0, 0}, {5.0, EventKind::Arrive, 3, 0},
      {5.0, EventKind::Fail, 0, 0},   {5.0, EventKind::Fail, 0, 1},
  };
  for (auto kind : {EventQueueKind::Heap, EventQueueKind::Calendar}) {
    EventQueue<TestEvent> q(kind);
    q.push({expected[3]});
    q.push({expected[0]});
    q.push({expected[5]});
    q.push({expected[2]});
    q.push({expected[4]});
    q.push({expected[1]});
    for (const auto& want : expected) {
      ASSERT_FALSE(q.empty());
      const EventKey got = q.top().key();
      EXPECT_EQ(got.time, want.time);
      EXPECT_EQ(got.kind, want.kind);
      EXPECT_EQ(got.id, want.id);
      EXPECT_EQ(got.seq, want.seq);
      q.pop();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueue, CalendarMatchesHeapUnderRandomChurn) {
  // Property test: interleaved pushes and pops with clustered, duplicate
  // and wide-spread times drain in exactly the same order from both
  // backends (distinct keys guaranteed by a per-push seq).
  util::Rng rng(20240807);
  EventQueue<TestEvent> heap(EventQueueKind::Heap);
  EventQueue<TestEvent> cal(EventQueueKind::Calendar);
  std::uint32_t seq = 0;
  for (int round = 0; round < 2000; ++round) {
    const double roll = rng.uniform();
    if (roll < 0.6 || heap.empty()) {
      double t;
      if (roll < 0.2) {
        t = 1000.0;  // heavy tie cluster
      } else if (roll < 0.4) {
        t = std::floor(rng.uniform(0.0, 100.0));  // duplicate-rich
      } else {
        t = rng.uniform(0.0, 5.0e6);  // wide spread (days of seconds)
      }
      const auto kind = static_cast<EventKind>(rng.uniform_index(3));
      const auto id = static_cast<std::uint32_t>(rng.uniform_index(64));
      const EventKey key{t, kind, id, seq++};
      heap.push({key});
      cal.push({key});
    } else {
      const EventKey a = heap.top().key();
      const EventKey b = cal.top().key();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.kind, b.kind);
      ASSERT_EQ(a.id, b.id);
      ASSERT_EQ(a.seq, b.seq);
      heap.pop();
      cal.pop();
    }
    ASSERT_EQ(heap.size(), cal.size());
  }
  while (!heap.empty()) {
    ASSERT_EQ(heap.top().key().seq, cal.top().key().seq);
    heap.pop();
    cal.pop();
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, FullSimulationIdenticalAcrossBackends) {
  // End-to-end equivalence: every policy/backfill combination produces an
  // operator==-identical SimResult from the calendar and heap backends,
  // with the auditor checking event-loop invariants along the way.
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto trace = synth::generate_system("Theta", options);
  for (auto policy : {PolicyKind::Fcfs, PolicyKind::Sjf}) {
    for (auto b : {BackfillKind::None, BackfillKind::Easy,
                   BackfillKind::Conservative, BackfillKind::AdaptiveRelaxed}) {
      SimConfig config;
      config.policy = policy;
      config.backfill.kind = b;
      config.audit = true;
      config.event_queue = EventQueueKind::Calendar;
      const auto calendar = simulate(trace, config);
      config.event_queue = EventQueueKind::Heap;
      const auto heap = simulate(trace, config);
      EXPECT_EQ(calendar.counters.audit_failures, 0u);
      EXPECT_EQ(heap.counters.audit_failures, 0u);
      ASSERT_TRUE(calendar == heap)
          << "backends diverged for " << to_string(policy) << " + "
          << to_string(b);
    }
  }
}

TEST(EventQueue, SameInstantCompletionsReleaseInJobOrder) {
  // Two same-size jobs end at exactly t=100 while a third that needs the
  // whole machine waits. Whatever order the finish events were pushed,
  // both backends drain the instant fully and start the big job at 100.
  auto t = make_trace(10, {job(0, 100, 5), job(0, 100, 5), job(1, 10, 10)});
  for (auto kind : {EventQueueKind::Heap, EventQueueKind::Calendar}) {
    SimConfig config;
    config.event_queue = kind;
    const auto r = simulate(t, config);
    EXPECT_DOUBLE_EQ(r.outcomes[2].start_time, 100.0);
    // Distinct instants: t=0 arrivals, t=1 arrival, t=100 (both finishes
    // drain in ONE batch), t=110 the big job's own finish.
    EXPECT_EQ(r.counters.event_batches, 4u);
  }
}

}  // namespace
}  // namespace lumos::sim
