// Unit tests for the util substrate: rng, strings, csv, time, tables,
// arena, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "util/arena.hpp"
#include "util/backoff.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time_util.hpp"

namespace lumos::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> xs(40001);
  for (auto& x : xs) x = rng.lognormal(std::log(100.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + 20000, xs.end());
  EXPECT_NEAR(xs[20000], 100.0, 5.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(31);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng(37);
  Rng child = rng.split();
  EXPECT_NE(rng.next(), child.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(AliasTable, MatchesWeights) {
  Rng rng(43);
  const std::vector<double> w{5.0, 1.0, 4.0};
  AliasTable table(w);
  std::array<int, 3> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[table.sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.4, 0.01);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}), InvalidArgument);
}

// ------------------------------------------------------------- strings ---

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWhitespaceDropsRuns) {
  const auto parts = split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double(" -1e3 "), -1000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(*parse_int("42"), 42);
  EXPECT_EQ(*parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4.2").has_value());
}

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
}

TEST(StringUtil, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("MiRa"), "mira");
  EXPECT_TRUE(starts_with("theta-gpu", "theta"));
  EXPECT_FALSE(starts_with("a", "ab"));
}

// ----------------------------------------------------------------- csv ---

TEST(Csv, RoundTripWithQuoting) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "with,comma", "with\"quote", "multi\nline"});
  std::istringstream in(out.str());
  CsvReader reader(in, ',', /*has_header=*/false);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "with,comma");
  EXPECT_EQ(row[2], "with\"quote");
  EXPECT_EQ(row[3], "multi\nline");
  EXPECT_FALSE(reader.next(row));
}

TEST(Csv, HeaderLookup) {
  std::istringstream in("id,name,value\n1,x,2.5\n");
  CsvReader reader(in);
  EXPECT_EQ(*reader.column("name"), 1u);
  EXPECT_FALSE(reader.column("missing").has_value());
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[*reader.column("value")], "2.5");
}

TEST(Csv, HandlesCrLf) {
  std::istringstream in("a,b\r\n1,2\r\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row[1], "2");
}

// ---------------------------------------------------------------- time ---

TEST(TimeUtil, HourOfDayRespectsOffset) {
  // Unix epoch is midnight UTC; -6h offset makes it 18:00 local.
  EXPECT_EQ(hour_of_day(0.0, 0, 0.0), 0);
  EXPECT_EQ(hour_of_day(0.0, 0, -6.0), 18);
  EXPECT_EQ(hour_of_day(3600.0 * 5, 0, 0.0), 5);
}

TEST(TimeUtil, DayOfWeek) {
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  EXPECT_EQ(day_of_week(0.0, 0, 0.0), 3);
  EXPECT_EQ(day_of_week(4 * kDay, 0, 0.0), 0);  // Monday
}

TEST(TimeUtil, FormatDuration) {
  EXPECT_EQ(format_duration(30.0), "30s");
  EXPECT_EQ(format_duration(90.0), "1.5m");
  EXPECT_EQ(format_duration(5400.0), "1.5h");
  EXPECT_EQ(format_duration(2.0 * kDay), "2.0d");
}

// --------------------------------------------------------------- table ---

TEST(TextTable, AlignsAndPads) {
  TextTable t({"a", "bb"});
  t.add_row({"xxx"});
  t.add_row({"y", "zzz"});
  const auto s = t.render();
  EXPECT_NE(s.find("a    bb"), std::string::npos);
  EXPECT_NE(s.find("xxx"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableHelpers, Formats) {
  EXPECT_EQ(percent(0.1234), "12.3%");
  EXPECT_EQ(fixed(2.5, 1), "2.5");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1000), "-1,000");
}

// --------------------------------------------------------- thread pool ---

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesLowestIndexExceptionDeterministically) {
  // Several chunks throw; the surfaced exception must always be the one
  // from the lowest-index chunk, independent of worker scheduling.
  ThreadPool pool(2);
  for (int round = 0; round < 25; ++round) {
    std::string caught;
    try {
      // Range 0..8 with a 2-thread pool gives 8 single-index chunks, so
      // indices 3 and 6 throw from different chunks.
      pool.parallel_for(0, 8, [](std::size_t i) {
        if (i == 3 || i == 6) {
          throw std::runtime_error("boom@" + std::to_string(i));
        }
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "boom@3");
  }
}

// --------------------------------------------------------------- Arena ---

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto* a = arena.allocate<std::uint8_t>(3);
  auto* b = arena.allocate<double>(4);   // needs 8-byte alignment
  auto* c = arena.allocate<std::uint32_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint32_t), 0u);
  // Writes through one allocation never alias another.
  for (int i = 0; i < 3; ++i) a[i] = 0xAB;
  for (int i = 0; i < 4; ++i) b[i] = 1.5;
  *c = 42;
  EXPECT_EQ(a[0], 0xAB);
  EXPECT_EQ(b[3], 1.5);
  EXPECT_EQ(*c, 42u);
  EXPECT_GE(arena.used_bytes(), 3 + 4 * sizeof(double) + sizeof(std::uint32_t));
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
}

TEST(Arena, GrowsAcrossChunksForLargeAllocations) {
  Arena arena;
  // Many mid-size allocations overflow chunk after chunk; every pointer
  // stays valid (chunks are never reallocated, only appended).
  std::vector<std::uint64_t*> blocks;
  for (std::size_t round = 0; round < 64; ++round) {
    auto* block = arena.allocate<std::uint64_t>(512);
    for (std::size_t i = 0; i < 512; ++i) block[i] = round;
    blocks.push_back(block);
  }
  for (std::size_t round = 0; round < 64; ++round) {
    EXPECT_EQ(blocks[round][0], round);
    EXPECT_EQ(blocks[round][511], round);
  }
  // One allocation larger than any default chunk gets a dedicated chunk.
  auto* big = arena.allocate<std::uint64_t>(100000);
  big[99999] = 7;
  EXPECT_EQ(big[99999], 7u);
  EXPECT_GE(arena.reserved_bytes(), (64 * 512 + 100000) * sizeof(std::uint64_t));
}

TEST(Arena, ResetRecyclesChunksWithoutReleasing) {
  Arena arena;
  (void)arena.allocate<double>(10000);
  const std::size_t reserved = arena.reserved_bytes();
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);  // chunks kept for reuse
  // Steady state: the same allocation pattern needs no new memory.
  (void)arena.allocate<double>(10000);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ThreadPool, ReusableAfterBodyThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 8, [](std::size_t) {
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Every chunk ran to completion (exceptions are collected, not leaked
  // into workers), and the pool still services new work.
  std::vector<std::atomic<int>> hits(40);
  pool.parallel_for(0, 40, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

// ------------------------------------------------------------ backoff ----

TEST(Backoff, DoublesFromBaseAndCaps) {
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 1), 0.05);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 2), 0.1);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 3), 0.2);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 4), 0.4);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 5), 0.8);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 6), 1.0);
  // The doubling loop saturates at the cap instead of overflowing, so an
  // arbitrarily late retry still gets a finite, capped delay.
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.05, 1.0, 4000), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(0.5, 0.3, 1), 0.3);  // base > cap
}

TEST(Backoff, RetryIndexIsOneBased) {
  EXPECT_THROW((void)backoff_delay_seconds(0.05, 1.0, 0), InvalidArgument);
}

// ---------------------------------------------------------- Rng state ----

TEST(Rng, StateRoundTripReproducesStreamExactly) {
  Rng original(91);
  // Burn a mixed prefix, ending on normal() so the Box–Muller cache is
  // populated — the snapshot must carry that cached value too.
  for (int i = 0; i < 37; ++i) original.next();
  (void)original.normal();
  Rng resumed(0);
  resumed.set_state(original.state());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(resumed.next(), original.next()) << "draw " << i;
  }
  // Exact equality, not near: normal() consumes the cache first and the
  // two streams must stay in lock-step through it.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(resumed.normal(), original.normal()) << "normal " << i;
  }
}

}  // namespace
}  // namespace lumos::util
