// Tests for the lumos::fault subsystem: the deterministic node
// failure/recovery process, degraded-capacity accounting in Cluster /
// NodeCluster, fault injection in the simulator event loop (retry
// policies, checkpointing, goodput/waste bookkeeping), and the
// calibration bridge synth::fault_config_for.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/node_cluster.hpp"
#include "sim/simulator.hpp"
#include "synth/calibration.hpp"
#include "synth/failure_model.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace lumos {
namespace {

trace::SystemSpec tiny_spec(std::uint32_t cores, int vcs = 0) {
  trace::SystemSpec spec;
  spec.name = "Tiny";
  spec.nodes = cores;
  spec.cores = cores;
  spec.primary_kind = trace::ResourceKind::Cpu;
  spec.virtual_clusters = vcs;
  spec.has_walltime_estimates = true;
  return spec;
}

trace::Job job(double submit, double run, std::uint32_t cores,
               double requested = -1.0) {
  trace::Job j;
  j.submit_time = submit;
  j.run_time = run;
  j.cores = cores;
  j.requested_time = requested > 0 ? requested : run;
  return j;
}

trace::Trace make_trace(std::uint32_t capacity,
                        std::vector<trace::Job> jobs) {
  trace::Trace t(tiny_spec(capacity), std::move(jobs));
  t.sort_by_submit();
  return t;
}

/// A 2-day synthetic Theta trace — realistic shapes for end-to-end runs.
trace::Trace theta_trace() {
  synth::GeneratorOptions options;
  options.seed = 7;
  options.duration_days = 2.0;
  return synth::generate_system("Theta", options);
}

fault::FaultConfig aggressive_faults() {
  fault::FaultConfig f;
  f.node_mtbf_s = 4.0 * 3600.0;  // flaky enough to interrupt 2-day runs
  f.node_mttr_s = 900.0;
  f.nodes_per_partition = 8;
  f.seed = 1234;
  return f;
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.backfilled_jobs, b.backfilled_jobs);
  EXPECT_EQ(a.goodput_core_hours, b.goodput_core_hours);
  EXPECT_EQ(a.wasted_core_hours, b.wasted_core_hours);
  EXPECT_EQ(a.interrupted_jobs, b.interrupted_jobs);
  EXPECT_EQ(a.abandoned_jobs, b.abandoned_jobs);
  EXPECT_EQ(a.counters.events, b.counters.events);
  EXPECT_EQ(a.counters.node_failures, b.counters.node_failures);
  EXPECT_EQ(a.counters.node_recoveries, b.counters.node_recoveries);
  EXPECT_EQ(a.counters.jobs_interrupted, b.counters.jobs_interrupted);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.work_lost_core_hours, b.counters.work_lost_core_hours);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].start_time, b.outcomes[i].start_time);
    EXPECT_EQ(a.outcomes[i].backfilled, b.outcomes[i].backfilled);
    EXPECT_EQ(a.outcomes[i].interruptions, b.outcomes[i].interruptions);
    EXPECT_EQ(a.outcomes[i].abandoned, b.outcomes[i].abandoned);
  }
}

// -------------------------------------------------------- FaultProcess --

TEST(FaultProcess, StreamIsDeterministicAndOrdered) {
  fault::FaultConfig config;
  config.node_mtbf_s = 1000.0;
  config.node_mttr_s = 100.0;
  config.nodes_per_partition = 4;
  config.seed = 99;
  const std::array<std::uint64_t, 2> caps = {64, 32};

  fault::FaultProcess a(config, caps);
  fault::FaultProcess b(config, caps);
  double last_time = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto pa = a.peek();
    ASSERT_TRUE(pa.has_value());
    const auto ea = a.pop();
    const auto eb = b.pop();
    EXPECT_EQ(pa->time, ea.time);
    EXPECT_EQ(ea.time, eb.time);
    EXPECT_EQ(ea.partition, eb.partition);
    EXPECT_EQ(ea.node, eb.node);
    EXPECT_EQ(ea.cores, eb.cores);
    EXPECT_EQ(ea.failure, eb.failure);
    EXPECT_GE(ea.time, last_time);
    last_time = ea.time;
  }
}

TEST(FaultProcess, EachNodeAlternatesFailureRecovery) {
  fault::FaultConfig config;
  config.node_mtbf_s = 500.0;
  config.node_mttr_s = 50.0;
  config.nodes_per_partition = 3;
  const std::array<std::uint64_t, 1> caps = {30};

  fault::FaultProcess process(config, caps);
  std::map<std::uint32_t, bool> next_is_failure;  // per node
  for (int i = 0; i < 120; ++i) {
    const auto ev = process.pop();
    const auto [it, inserted] = next_is_failure.emplace(ev.node, true);
    EXPECT_EQ(ev.failure, it->second)
        << "node " << ev.node << " broke up/down alternation";
    it->second = !ev.failure;
    EXPECT_EQ(ev.cores, 10u);  // 30 cores over 3 nodes
  }
}

TEST(FaultProcess, SplitsRemainderToLowestNodes) {
  fault::FaultConfig config;
  config.node_mtbf_s = 1000.0;
  config.nodes_per_partition = 4;
  const std::array<std::uint64_t, 1> caps = {10};  // 3,3,2,2

  fault::FaultProcess process(config, caps);
  std::map<std::uint32_t, std::uint64_t> cores_of;
  for (int i = 0; i < 64; ++i) {
    const auto ev = process.pop();
    cores_of[ev.node] = ev.cores;
  }
  ASSERT_EQ(cores_of.size(), 4u);
  EXPECT_EQ(cores_of[0], 3u);
  EXPECT_EQ(cores_of[1], 3u);
  EXPECT_EQ(cores_of[2], 2u);
  EXPECT_EQ(cores_of[3], 2u);
}

TEST(FaultConfig, DisabledByDefault) {
  const fault::FaultConfig config;
  EXPECT_FALSE(config.enabled());
  fault::FaultConfig on;
  on.node_mtbf_s = 10.0;
  EXPECT_TRUE(on.enabled());
  on.nodes_per_partition = 0;
  EXPECT_FALSE(on.enabled());
}

TEST(RetryPolicy, RoundTripsThroughStrings) {
  for (const auto policy :
       {fault::RetryPolicy::Resubmit, fault::RetryPolicy::RequeueFront,
        fault::RetryPolicy::Abandon}) {
    EXPECT_EQ(fault::retry_policy_from_string(fault::to_string(policy)),
              policy);
  }
  EXPECT_THROW((void)fault::retry_policy_from_string("nonsense"),
               InvalidArgument);
}

// ---------------------------------------- degraded-capacity accounting --

TEST(Cluster, FailRecoverAccounting) {
  sim::Cluster c(100);
  ASSERT_TRUE(c.allocate(60));
  c.fail(30);
  EXPECT_EQ(c.free(), 10u);
  EXPECT_EQ(c.offline(), 30u);
  EXPECT_EQ(c.allocated(), 60u);
  EXPECT_FALSE(c.allocate(11));  // offline cores are not allocatable
  c.recover(30);
  EXPECT_EQ(c.free(), 40u);
  EXPECT_EQ(c.offline(), 0u);
  EXPECT_EQ(c.allocated(), 60u);
}

TEST(Cluster, FailRequiresFreeCores) {
  sim::Cluster c(100);
  ASSERT_TRUE(c.allocate(80));
  EXPECT_THROW(c.fail(30), InvalidArgument);  // only 20 free
  EXPECT_THROW(c.recover(1), InvalidArgument);  // nothing offline
}

TEST(Cluster, ReleaseClampsToOnlineCapacity) {
  sim::Cluster c(100);
  ASSERT_TRUE(c.allocate(60));
  c.fail(40);
  c.release(60);
  EXPECT_EQ(c.free(), 60u);  // capacity minus the 40 offline
  EXPECT_EQ(c.allocated(), 0u);
}

TEST(NodeCluster, OfflineAccounting) {
  sim::NodeCluster c(4, 8);
  EXPECT_EQ(c.free_gpus(), 32u);
  c.set_node_offline(1);
  EXPECT_EQ(c.offline_nodes(), 1u);
  EXPECT_EQ(c.offline_gpus(), 8u);
  EXPECT_EQ(c.free_gpus(), 24u);
  EXPECT_THROW(c.set_node_offline(1), InvalidArgument);  // already offline
  EXPECT_THROW(c.set_node_offline(9), InvalidArgument);  // out of range
  c.restore_node(1);
  EXPECT_EQ(c.offline_nodes(), 0u);
  EXPECT_EQ(c.free_gpus(), 32u);
  EXPECT_THROW(c.restore_node(1), InvalidArgument);  // not offline
}

// ------------------------------------------------ simulator integration --

TEST(FaultSim, SameSeedIsBitIdentical) {
  const auto trace = theta_trace();
  sim::SimConfig config;
  config.fault = aggressive_faults();
  const auto a = sim::simulate(trace, config);
  const auto b = sim::simulate(trace, config);
  EXPECT_GT(a.counters.node_failures, 0u);
  expect_identical(a, b);
}

TEST(FaultSim, ZeroRateIsEquivalentToFaultFree) {
  const auto trace = theta_trace();
  sim::SimConfig plain;
  sim::SimConfig zeroed;
  zeroed.fault = aggressive_faults();
  zeroed.fault.node_mtbf_s = 0.0;  // disabled, everything else set
  const auto a = sim::simulate(trace, plain);
  const auto b = sim::simulate(trace, zeroed);
  expect_identical(a, b);
  EXPECT_EQ(b.counters.node_failures, 0u);
  EXPECT_EQ(b.goodput_core_hours, 0.0);
  EXPECT_EQ(b.wasted_core_hours, 0.0);
}

TEST(FaultSim, AuditCleanUnderAggressiveFaults) {
  const auto trace = theta_trace();
  sim::SimConfig config;
  config.fault = aggressive_faults();
  config.audit = true;
  config.audit_fatal = true;  // first violated invariant throws
  const auto result = sim::simulate(trace, config);
  EXPECT_EQ(result.counters.audit_failures, 0u);
  EXPECT_GT(result.counters.audits, 0u);
  EXPECT_GT(result.counters.node_failures, 0u);
}

TEST(FaultSim, InterruptionBookkeepingBalances) {
  const auto trace = theta_trace();
  for (const auto policy :
       {fault::RetryPolicy::Resubmit, fault::RetryPolicy::RequeueFront,
        fault::RetryPolicy::Abandon}) {
    sim::SimConfig config;
    config.fault = aggressive_faults();
    config.fault.retry = policy;
    const auto result = sim::simulate(trace, config);
    // Every interruption either retried the job or abandoned it.
    EXPECT_EQ(result.counters.jobs_interrupted,
              result.counters.retries + result.counters.jobs_abandoned)
        << fault::to_string(policy);
    EXPECT_EQ(result.abandoned_jobs, result.counters.jobs_abandoned)
        << fault::to_string(policy);
    EXPECT_GE(result.wasted_core_hours, 0.0);
    std::size_t interrupted = 0;
    std::size_t abandoned = 0;
    for (const auto& o : result.outcomes) {
      if (o.interruptions > 0) ++interrupted;
      if (o.abandoned) {
        ++abandoned;
        EXPECT_GE(o.interruptions, 1u);
      }
    }
    EXPECT_EQ(interrupted, result.interrupted_jobs);
    EXPECT_EQ(abandoned, result.abandoned_jobs);
  }
}

TEST(FaultSim, AbandonFirstInterruptionGivesUp) {
  const auto trace = theta_trace();
  sim::SimConfig config;
  config.fault = aggressive_faults();
  config.fault.retry = fault::RetryPolicy::Abandon;
  const auto result = sim::simulate(trace, config);
  EXPECT_GT(result.counters.jobs_interrupted, 0u);
  EXPECT_EQ(result.counters.retries, 0u);
  EXPECT_EQ(result.counters.jobs_abandoned, result.counters.jobs_interrupted);
  for (const auto& o : result.outcomes) {
    EXPECT_LE(o.interruptions, 1u);  // abandoned on the first hit
  }
}

TEST(FaultSim, CheckpointsReduceLostWork) {
  // One long job on a one-node partition: the first interruption happens
  // at the same fault-process time in both runs, so checkpointed work can
  // only shrink the rolled-back window.
  const auto trace = make_trace(100, {job(0.0, 50'000.0, 100)});
  sim::SimConfig base;
  base.fault.node_mtbf_s = 20'000.0;
  base.fault.node_mttr_s = 1'000.0;
  base.fault.nodes_per_partition = 1;
  base.fault.retry = fault::RetryPolicy::RequeueFront;
  base.fault.max_retries = 100;
  base.fault.seed = 5;

  sim::SimConfig checkpointed = base;
  checkpointed.fault.checkpoint_interval_s = 3600.0;

  const auto without = sim::simulate(trace, base);
  const auto with = sim::simulate(trace, checkpointed);
  ASSERT_GT(without.counters.jobs_interrupted, 0u);
  ASSERT_GT(with.counters.jobs_interrupted, 0u);
  EXPECT_LE(with.wasted_core_hours, without.wasted_core_hours);
  // With checkpoints the job finishes no later than without them.
  EXPECT_LE(with.makespan, without.makespan);
}

TEST(FaultSim, GoodputCountsCompletedWorkOnly) {
  const auto trace = theta_trace();
  sim::SimConfig config;
  config.fault = aggressive_faults();
  const auto result = sim::simulate(trace, config);
  double expected = 0.0;
  const auto& jobs = trace.jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& o = result.outcomes[i];
    if (o.started() && !o.abandoned) {
      expected += jobs[i].run_time * jobs[i].cores / 3600.0;
    }
  }
  EXPECT_NEAR(result.goodput_core_hours, expected, 1e-6);
}

TEST(FaultSim, MetricsCarryFaultAccounting) {
  const auto trace = theta_trace();
  sim::SimConfig config;
  config.fault = aggressive_faults();
  const auto result = sim::simulate(trace, config);
  const auto metrics = sim::compute_metrics(trace, result);
  EXPECT_EQ(metrics.goodput_core_hours, result.goodput_core_hours);
  EXPECT_EQ(metrics.wasted_core_hours, result.wasted_core_hours);
  EXPECT_EQ(metrics.interrupted_jobs, result.interrupted_jobs);
  EXPECT_EQ(metrics.abandoned_jobs, result.abandoned_jobs);
}

// ------------------------------------------------- calibration bridge --

TEST(FailureModel, FaultConfigForIsDeterministicAndSane) {
  const auto theta = synth::calibration_for("Theta");
  const auto config = synth::fault_config_for(theta);
  const auto again = synth::fault_config_for(theta);
  EXPECT_EQ(config.node_mtbf_s, again.node_mtbf_s);
  EXPECT_EQ(config.node_mttr_s, again.node_mttr_s);
  EXPECT_GT(config.node_mtbf_s, 0.0);
  EXPECT_GT(config.node_mttr_s, 0.0);
  EXPECT_TRUE(config.enabled());
}

TEST(FailureModel, FlakierSystemsGetShorterMtbf) {
  // Philly's failure share is well above Theta's in the calibrations, so
  // its derived per-node MTBF must be shorter.
  const auto theta = synth::fault_config_for(synth::calibration_for("Theta"));
  const auto philly =
      synth::fault_config_for(synth::calibration_for("Philly"));
  EXPECT_LT(philly.node_mtbf_s, theta.node_mtbf_s);
}

}  // namespace
}  // namespace lumos
