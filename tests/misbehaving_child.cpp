// Fixture child for supervise_test: a process that misbehaves on demand,
// so the supervisor is exercised against real crashes, hangs, and torn
// output rather than mocks. Usage:
//
//   misbehaving_child MODE [ARGS...]
//
//   clean                 print a valid one-line report JSON, exit 0
//   exit CODE             exit with CODE (exit-code mapping tests)
//   crash                 abort() -> SIGABRT
//   hang                  sleep forever (SIGTERM at default disposition,
//                         so the supervisor's SIGTERM suffices)
//   stubborn              ignore SIGTERM, then sleep forever (forces the
//                         supervisor's SIGKILL escalation)
//   huge-stderr           stream ~2 MiB to stderr (ring-tail test),
//                         ending with a recognisable marker, then exit 3
//   partial-json          print a truncated JSON document, exit 0
//   flaky STATE_FILE      crash on the first run (creates STATE_FILE),
//                         behave like `clean` once it exists — the
//                         retry-then-succeed scenario
//   atomic-loop PATH      rewrite PATH forever via write_json_atomic,
//                         SIGTERM ignored — the parent SIGKILLs it at an
//                         arbitrary instant and PATH must still parse
//   failpoint-write PATH  arm the obs.write_json failpoint, then attempt
//                         an atomic write: in failpoint builds the typed
//                         InjectedFault maps to exit 4 and PATH is never
//                         created; elsewhere the write succeeds (exit 0)
//
// Exit codes mirror bench/common.hpp: 0 ok, 2 usage, 3 runtime, 4 fault.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "util/failpoint.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace {

constexpr int kOk = 0;
constexpr int kUsage = 2;
constexpr int kRuntime = 3;
constexpr int kFault = 4;

void print_clean_report() {
  lumos::obs::Json report = lumos::obs::Json::object();
  report["figure"] = "Fixture";
  report["wall_seconds"] = 0.0;
  lumos::obs::Json metrics = lumos::obs::Json::object();
  metrics["fixture.value"] = 1.0;
  report["metrics"] = std::move(metrics);
  std::cout << report.dump(-1) << '\n';
}

[[noreturn]] void sleep_forever() {
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
}

int run(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: misbehaving_child MODE [ARGS...]\n";
    return kUsage;
  }
  const std::string mode = argv[1];

  if (mode == "clean") {
    print_clean_report();
    return kOk;
  }
  if (mode == "exit") {
    if (argc < 3) return kUsage;
    return std::atoi(argv[2]);
  }
  if (mode == "crash") {
    std::abort();
  }
  if (mode == "hang") {
    sleep_forever();
  }
  if (mode == "stubborn") {
    std::signal(SIGTERM, SIG_IGN);
    sleep_forever();
  }
  if (mode == "huge-stderr") {
    const std::string chunk(1024, 'x');
    for (int i = 0; i < 2048; ++i) {
      std::cerr << chunk << '\n';
    }
    std::cerr << "END-OF-STDERR-MARKER\n";
    return kRuntime;
  }
  if (mode == "partial-json") {
    std::cout << "{\"figure\": \"Fixture\", \"metrics\": {" << std::flush;
    return kOk;
  }
  if (mode == "flaky") {
    if (argc < 3) return kUsage;
    std::ifstream probe(argv[2]);
    if (!probe) {
      std::ofstream(argv[2]) << "attempted\n";
      std::abort();
    }
    print_clean_report();
    return kOk;
  }
  if (mode == "atomic-loop") {
    if (argc < 3) return kUsage;
    std::signal(SIGTERM, SIG_IGN);  // only SIGKILL stops the loop
    for (std::int64_t i = 0;; ++i) {
      lumos::obs::Json doc = lumos::obs::Json::object();
      doc["iteration"] = i;
      doc["payload"] = std::string(4096, 'p');
      lumos::obs::write_json_atomic(doc, argv[2]);
    }
  }
  if (mode == "failpoint-write") {
    if (argc < 3) return kUsage;
    lumos::fault::FailpointRegistry::global().arm("obs.write_json");
    lumos::obs::Json doc = lumos::obs::Json::object();
    doc["key"] = 1;
    lumos::obs::write_json_atomic(doc, argv[2]);
    return kOk;
  }
  std::cerr << "misbehaving_child: unknown mode \"" << mode << "\"\n";
  return kUsage;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const lumos::fault::InjectedFault& e) {
    std::cerr << "misbehaving_child: " << e.what() << '\n';
    return kFault;
  } catch (const std::exception& e) {
    std::cerr << "misbehaving_child: " << e.what() << '\n';
    return kRuntime;
  }
}
