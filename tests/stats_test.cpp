// Unit tests for the stats substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos::stats {
namespace {

// --------------------------------------------------------- descriptive ---

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, QuantileRejectsBadQ) {
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, 1.5), InvalidArgument);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(Descriptive, GeometricMean) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1.0, 4.0, 16.0}), 4.0,
              1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{1.0, -2.0}), 0.0);
}

// ---------------------------------------------------------------- ecdf ---

TEST(Ecdf, EvaluatesStepFunction) {
  const Ecdf f(std::vector<double>{1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(10.0), 1.0);
}

TEST(Ecdf, QuantileInverse) {
  const Ecdf f(std::vector<double>{10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 20.0);
}

TEST(Ecdf, CurveEndpoints) {
  const Ecdf f(std::vector<double>{5.0, 1.0, 3.0});
  const auto curve = f.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 5.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, EmptyIsZero) {
  const Ecdf f;
  EXPECT_DOUBLE_EQ(f(1.0), 0.0);
  EXPECT_TRUE(f.curve(3).empty());
}

// ----------------------------------------------------------- histogram ---

TEST(Histogram, LinearBinning) {
  auto h = Histogram::linear(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_NEAR(h.fraction(0), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
  auto h = Histogram::linear(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, LogBinningSpansDecades) {
  auto h = Histogram::logarithmic(1.0, 10000.0, 4);
  h.add(5.0);      // decade [1,10)
  h.add(50.0);     // [10,100)
  h.add(500.0);    // [100,1000)
  h.add(5000.0);   // [1000,10000)
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(h.count(i), 1.0);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram::linear(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram::logarithmic(0.0, 10.0, 4), InvalidArgument);
}

TEST(Histogram, HourlyCounts) {
  // Jobs at local hours 0, 0, 5 with zero offset.
  const std::vector<double> submits{10.0, 60.0, 5.0 * 3600.0 + 1.0};
  const auto counts = hourly_counts(submits, 0, 0.0);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[5], 1.0);
}

// ----------------------------------------------------------------- kde ---

TEST(Kde, DensityIntegratesToOne) {
  util::Rng rng(3);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const double h = scott_bandwidth(xs);
  double integral = 0.0;
  const double dx = 0.05;
  for (double x = -6.0; x <= 6.0; x += dx) {
    integral += kde_density(xs, x, h) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, ViolinModeNearTrueMode) {
  util::Rng rng(5);
  std::vector<double> xs(4000);
  for (auto& x : xs) x = rng.normal(10.0, 1.0);
  const auto v = violin(xs, 128);
  EXPECT_EQ(v.count, xs.size());
  EXPECT_NEAR(v.mode, 10.0, 0.5);
}

TEST(Kde, ViolinLogDropsNonPositive) {
  const std::vector<double> xs{-1.0, 0.0, 100.0, 100.0, 100.0};
  const auto v = violin_log(xs, 32);
  EXPECT_EQ(v.count, 3u);
  EXPECT_NEAR(v.mode, 100.0, 20.0);
}

TEST(Kde, EmptySampleSafe) {
  const auto v = violin({}, 16);
  EXPECT_EQ(v.count, 0u);
  EXPECT_TRUE(v.grid.empty());
  EXPECT_DOUBLE_EQ(kde_density({}, 0.0, 1.0), 0.0);
}

// ---------------------------------------------------------- correlation --

TEST(Correlation, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{9, 6, 3};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, RanksAverageTies) {
  const auto r = ranks(std::vector<double>{10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Correlation, DegenerateInputs) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_THROW((void)pearson(std::vector<double>{1.0}, y), InvalidArgument);
}

}  // namespace
}  // namespace lumos::stats
