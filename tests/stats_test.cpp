// Unit tests for the stats substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/correlation.hpp"
#include "stats/sketch.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos::stats {
namespace {

// --------------------------------------------------------- descriptive ---

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Descriptive, QuantileRejectsBadQ) {
  EXPECT_THROW((void)quantile(std::vector<double>{1.0}, 1.5), InvalidArgument);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(Descriptive, GeometricMean) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1.0, 4.0, 16.0}), 4.0,
              1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{1.0, -2.0}), 0.0);
}

// ---------------------------------------------------------------- ecdf ---

TEST(Ecdf, EvaluatesStepFunction) {
  const Ecdf f(std::vector<double>{1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(10.0), 1.0);
}

TEST(Ecdf, QuantileInverse) {
  const Ecdf f(std::vector<double>{10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 20.0);
}

TEST(Ecdf, CurveEndpoints) {
  const Ecdf f(std::vector<double>{5.0, 1.0, 3.0});
  const auto curve = f.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 5.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, EmptyIsZero) {
  const Ecdf f;
  EXPECT_DOUBLE_EQ(f(1.0), 0.0);
  EXPECT_TRUE(f.curve(3).empty());
}

// ----------------------------------------------------------- histogram ---

TEST(Histogram, LinearBinning) {
  auto h = Histogram::linear(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_NEAR(h.fraction(0), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
  auto h = Histogram::linear(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, LogBinningSpansDecades) {
  auto h = Histogram::logarithmic(1.0, 10000.0, 4);
  h.add(5.0);      // decade [1,10)
  h.add(50.0);     // [10,100)
  h.add(500.0);    // [100,1000)
  h.add(5000.0);   // [1000,10000)
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(h.count(i), 1.0);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram::linear(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram::logarithmic(0.0, 10.0, 4), InvalidArgument);
}

TEST(Histogram, HourlyCounts) {
  // Jobs at local hours 0, 0, 5 with zero offset.
  const std::vector<double> submits{10.0, 60.0, 5.0 * 3600.0 + 1.0};
  const auto counts = hourly_counts(submits, 0, 0.0);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[5], 1.0);
}

// ----------------------------------------------------------------- kde ---

TEST(Kde, DensityIntegratesToOne) {
  util::Rng rng(3);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  const double h = scott_bandwidth(xs);
  double integral = 0.0;
  const double dx = 0.05;
  for (double x = -6.0; x <= 6.0; x += dx) {
    integral += kde_density(xs, x, h) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, ViolinModeNearTrueMode) {
  util::Rng rng(5);
  std::vector<double> xs(4000);
  for (auto& x : xs) x = rng.normal(10.0, 1.0);
  const auto v = violin(xs, 128);
  EXPECT_EQ(v.count, xs.size());
  EXPECT_NEAR(v.mode, 10.0, 0.5);
}

TEST(Kde, ViolinLogDropsNonPositive) {
  const std::vector<double> xs{-1.0, 0.0, 100.0, 100.0, 100.0};
  const auto v = violin_log(xs, 32);
  EXPECT_EQ(v.count, 3u);
  EXPECT_NEAR(v.mode, 100.0, 20.0);
}

TEST(Kde, EmptySampleSafe) {
  const auto v = violin({}, 16);
  EXPECT_EQ(v.count, 0u);
  EXPECT_TRUE(v.grid.empty());
  EXPECT_DOUBLE_EQ(kde_density({}, 0.0, 1.0), 0.0);
}

// ---------------------------------------------------------- correlation --

TEST(Correlation, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{9, 6, 3};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, RanksAverageTies) {
  const auto r = ranks(std::vector<double>{10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Correlation, DegenerateInputs) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_THROW((void)pearson(std::vector<double>{1.0}, y), InvalidArgument);
}

// -------------------------------------------------------------- sketch ---

// Observed normalized rank error of `value` at target quantile q against
// a sorted sample: any rank inside the [F(value-), F(value)] tie interval
// is exact, otherwise the distance to the nearer edge.
double rank_error(const std::vector<double>& sorted, double value,
                  double q) {
  const double n = static_cast<double>(sorted.size());
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
  const double f_below = static_cast<double>(lo - sorted.begin()) / n;
  const double f_at = static_cast<double>(hi - sorted.begin()) / n;
  if (q >= f_below && q <= f_at) return 0.0;
  return q < f_below ? f_below - q : q - f_at;
}

double max_rank_error(const QuantileSketch& sketch,
                      std::vector<double> sample) {
  std::sort(sample.begin(), sample.end());
  double worst = 0.0;
  for (int i = 0; i <= 500; ++i) {
    const double q = static_cast<double>(i) / 500.0;
    worst = std::max(worst, rank_error(sample, sketch.quantile(q), q));
  }
  return worst;
}

// A skewed runtime-like sample with heavy ties (the tie/interpolation
// cases the shared convention pins down).
std::vector<double> skewed_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      xs.push_back(60.0);  // atom: a popular "one minute" runtime
    } else {
      xs.push_back(std::exp(rng.normal(4.0, 2.0)));
    }
  }
  return xs;
}

// The pinning test named by the quantile-convention documentation in
// descriptive.hpp: while a sketch has never compacted (n <= level-0
// capacity), its answers equal the exact stats backends bit for bit, so
// exact and sketch implementations are swappable.
TEST(QuantileSketch, SketchMatchesExactConvention) {
  const auto xs = skewed_sample(150, 7);  // < k = 200: never compacts
  QuantileSketch sketch;
  for (double x : xs) sketch.insert(x);
  ASSERT_EQ(sketch.retained(), xs.size());

  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const Ecdf ecdf(xs);
  for (int i = 0; i <= 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_DOUBLE_EQ(sketch.quantile(q), quantile_sorted(sorted, q))
        << "q=" << q;
    EXPECT_DOUBLE_EQ(sketch.quantile(q), ecdf.quantile(q)) << "q=" << q;
  }
  for (double x : {sorted.front(), 59.9, 60.0, 60.1, sorted.back()}) {
    EXPECT_DOUBLE_EQ(sketch(x), ecdf(x)) << "x=" << x;
  }
  // Clamping edges of the shared convention.
  EXPECT_DOUBLE_EQ(sketch.quantile(-0.5), sorted.front());
  EXPECT_DOUBLE_EQ(sketch.quantile(1.5), sorted.back());
}

TEST(QuantileSketch, RankErrorWithinBoundAfterCompaction) {
  const auto xs = skewed_sample(100000, 11);
  QuantileSketch sketch;
  for (double x : xs) sketch.insert(x);
  EXPECT_EQ(sketch.count(), xs.size());
  // Compaction definitely ran: far fewer retained items than inserts.
  EXPECT_LT(sketch.retained(), 3000u);
  EXPECT_LE(max_rank_error(sketch, xs), sketch.epsilon());
  // Exact extremes survive compaction.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(sketch.min(), sorted.front());
  EXPECT_DOUBLE_EQ(sketch.max(), sorted.back());
}

TEST(QuantileSketch, BoundedMemoryPlateaus) {
  QuantileSketch sketch;
  util::Rng rng(3);
  std::size_t retained_at_100k = 0;
  for (std::size_t i = 0; i < 400000; ++i) {
    sketch.insert(rng.uniform(0.0, 1e6));
    if (i == 100000) retained_at_100k = sketch.retained();
  }
  // 4x the stream adds at most a few levels, not linear growth.
  EXPECT_LT(sketch.retained(), retained_at_100k + 200);
}

TEST(QuantileSketch, MergeCommutesWithinBound) {
  const auto xs = skewed_sample(30000, 17);
  const std::size_t third = xs.size() / 3;
  QuantileSketch a, b, c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < third ? a : i < 2 * third ? b : c).insert(xs[i]);
  }
  // (a + b) + c  vs  c + (b + a): different association and order.
  QuantileSketch left = a;
  left.merge(b);
  left.merge(c);
  QuantileSketch right = c;
  QuantileSketch ba = b;
  ba.merge(a);
  right.merge(ba);

  EXPECT_EQ(left.count(), xs.size());
  EXPECT_EQ(right.count(), xs.size());
  EXPECT_LE(max_rank_error(left, xs), left.epsilon());
  EXPECT_LE(max_rank_error(right, xs), right.epsilon());
  // Both orders agree with each other within twice the bound.
  for (int i = 0; i <= 20; ++i) {
    const double q = static_cast<double>(i) / 20.0;
    const double rank_gap =
        std::abs(left(right.quantile(q)) - right(right.quantile(q)));
    EXPECT_LE(rank_gap, 2.0 * left.epsilon()) << "q=" << q;
  }
}

TEST(QuantileSketch, EmptyAndSingle) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch(1.0), 0.0);
  EXPECT_TRUE(sketch.curve(5).empty());
  sketch.insert(42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(sketch(41.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch(42.0), 1.0);
}

TEST(QuantileSketch, DeterministicForFixedSeed) {
  const auto xs = skewed_sample(50000, 23);
  QuantileSketch s1, s2;
  for (double x : xs) {
    s1.insert(x);
    s2.insert(x);
  }
  for (int i = 0; i <= 100; ++i) {
    const double q = static_cast<double>(i) / 100.0;
    EXPECT_DOUBLE_EQ(s1.quantile(q), s2.quantile(q));
  }
}

TEST(StreamingHistogram, RelativeValueErrorWithinBound) {
  const auto xs = skewed_sample(50000, 29);
  StreamingHistogram hist;
  for (double x : xs) hist.insert(x);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  for (int i = 0; i <= 500; ++i) {
    const double q = static_cast<double>(i) / 500.0;
    const auto idx = static_cast<std::size_t>(std::floor(q * (n - 1.0)));
    const double exact = sorted[idx];
    EXPECT_NEAR(hist.quantile(q), exact, exact * hist.relative_error())
        << "q=" << q;
  }
}

TEST(StreamingHistogram, ShardedMergeIsBitIdentical) {
  const auto xs = skewed_sample(20000, 31);
  StreamingHistogram serial;
  for (double x : xs) serial.insert(x);

  StreamingHistogram merged;
  const std::size_t shard_size = xs.size() / 4;
  for (std::size_t s = 0; s < 4; ++s) {
    StreamingHistogram shard;
    const std::size_t begin = s * shard_size;
    const std::size_t end =
        s == 3 ? xs.size() : begin + shard_size;
    for (std::size_t i = begin; i < end; ++i) shard.insert(xs[i]);
    merged.merge(shard);
  }
  EXPECT_EQ(merged.count(), serial.count());
  // sum() is a float accumulation — summation *order* differs between
  // sharded and serial ingest, so it matches only to rounding noise.
  EXPECT_NEAR(merged.sum(), serial.sum(), 1e-9 * serial.sum());
  EXPECT_EQ(merged.buckets(), serial.buckets());
  for (int i = 0; i <= 200; ++i) {
    const double q = static_cast<double>(i) / 200.0;
    EXPECT_DOUBLE_EQ(merged.quantile(q), serial.quantile(q)) << "q=" << q;
  }
}

TEST(StreamingHistogram, MergeRequiresIdenticalOptions) {
  StreamingHistogram a;
  StreamingHistogram::Options tighter;
  tighter.relative_error = 0.001;
  StreamingHistogram b(tighter);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(StreamingHistogram, ZeroAndNegativeValues) {
  StreamingHistogram hist;
  hist.insert(-5.0);  // clamps to 0
  hist.insert(0.0);
  hist.insert(10.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist(0.0), 2.0 / 3.0);
  EXPECT_NEAR(hist.quantile(1.0), 10.0, 10.0 * hist.relative_error());
}

// ------------------------------- snapshots (crash-consistent restore) ----

TEST(QuantileSketch, SnapshotRestoreContinuesBitIdentically) {
  // Restore must reproduce the sketch exactly — including the compaction
  // coin — so a restored sketch fed the same remaining stream lands in
  // the same final state as one that never stopped.
  QuantileSketch original;
  util::Rng data(21);
  for (int i = 0; i < 50000; ++i) original.insert(data.lognormal(5.0, 2.0));
  QuantileSketch resumed = QuantileSketch::restore(original.snapshot());
  EXPECT_EQ(resumed.count(), original.count());
  EXPECT_EQ(resumed.retained(), original.retained());
  for (int i = 0; i < 50000; ++i) {
    const double x = data.lognormal(5.0, 2.0);
    original.insert(x);
    resumed.insert(x);
  }
  EXPECT_EQ(resumed.count(), original.count());
  EXPECT_EQ(resumed.retained(), original.retained());
  for (int i = 0; i <= 500; ++i) {
    const double q = static_cast<double>(i) / 500.0;
    EXPECT_DOUBLE_EQ(resumed.quantile(q), original.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(resumed.min(), original.min());
  EXPECT_DOUBLE_EQ(resumed.max(), original.max());
}

TEST(QuantileSketch, RestoreRejectsInconsistentWeight) {
  QuantileSketch sketch;
  for (int i = 0; i < 1000; ++i) sketch.insert(static_cast<double>(i));
  auto snapshot = sketch.snapshot();
  snapshot.count += 1;  // retained weight no longer sums to count
  EXPECT_THROW(QuantileSketch::restore(snapshot), InvalidArgument);
}

TEST(QuantileSketch, RestoreRejectsInvertedMinMax) {
  QuantileSketch sketch;
  sketch.insert(1.0);
  sketch.insert(2.0);
  auto snapshot = sketch.snapshot();
  std::swap(snapshot.min, snapshot.max);
  EXPECT_THROW(QuantileSketch::restore(snapshot), InvalidArgument);
}

TEST(StreamingHistogram, SnapshotRestoreIsExact) {
  StreamingHistogram original;
  util::Rng data(22);
  for (int i = 0; i < 20000; ++i) original.insert(data.lognormal(4.0, 1.5));
  original.insert(0.0);  // populate the zero bucket too
  StreamingHistogram resumed =
      StreamingHistogram::restore(original.snapshot());
  EXPECT_EQ(resumed.count(), original.count());
  EXPECT_EQ(resumed.buckets(), original.buckets());
  EXPECT_DOUBLE_EQ(resumed.sum(), original.sum());
  for (int i = 0; i <= 200; ++i) {
    const double q = static_cast<double>(i) / 200.0;
    EXPECT_DOUBLE_EQ(resumed.quantile(q), original.quantile(q)) << "q=" << q;
  }
}

TEST(StreamingHistogram, RestoreRejectsCountMismatch) {
  StreamingHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.insert(static_cast<double>(i));
  auto snapshot = hist.snapshot();
  snapshot.count += 5;  // buckets no longer account for every insert
  EXPECT_THROW(StreamingHistogram::restore(snapshot), InvalidArgument);
}

}  // namespace
}  // namespace lumos::stats
