// Unit tests for the ML substrate: matrix algebra, datasets, and the five
// regression model families.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/matrix.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/tobit.hpp"
#include "ml/tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos::ml {
namespace {

/// y = 3 x0 - 2 x1 + 5 (+ optional noise).
Dataset linear_dataset(std::size_t n, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  d.x = Matrix(n, 2);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    d.x(i, 0) = x0;
    d.x(i, 1) = x1;
    d.y[i] = 3.0 * x0 - 2.0 * x1 + 5.0 + rng.normal(0.0, noise);
  }
  return d;
}

// --------------------------------------------------------------- Matrix --

TEST(Matrix, MultiplyIdentity) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto r = a.multiply(Matrix::identity(2));
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 3.0);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  const auto t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(Matrix, MatrixVector) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto v = a.multiply(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), InvalidArgument);
}

TEST(CholeskySolve, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = cholesky_solve(a, {10.0, 9.0});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskySolve, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 5;
  a(1, 0) = 5;
  a(1, 1) = 1;  // not PD
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), InvalidArgument);
}

// -------------------------------------------------------------- Dataset --

TEST(Dataset, ChronologicalSplitKeepsOrder) {
  auto d = linear_dataset(10, 0.0, 1);
  const auto split = chronological_split(d, 0.7);
  EXPECT_EQ(split.train.size(), 7u);
  EXPECT_EQ(split.test.size(), 3u);
  EXPECT_DOUBLE_EQ(split.test.x(0, 0), d.x(7, 0));
  EXPECT_DOUBLE_EQ(split.test.y[2], d.y[9]);
  EXPECT_THROW(chronological_split(d, 1.5), InvalidArgument);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  auto d = linear_dataset(500, 0.0, 2);
  Standardizer s(d.x);
  const auto z = s.transform(d.x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < z.rows(); ++i) mean += z(i, j);
    EXPECT_NEAR(mean / static_cast<double>(z.rows()), 0.0, 1e-9);
  }
}

TEST(Standardizer, ConstantColumnSafe) {
  Matrix x(3, 1, 42.0);
  Standardizer s(x);
  auto z = s.transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);  // no division blow-up
}

// ----------------------------------------------------------- Regressors --

TEST(LinearRegression, RecoversExactLinearFunction) {
  const auto d = linear_dataset(200, 0.0, 3);
  LinearRegression model(0.0);
  model.fit(d);
  std::vector<double> row{1.0, -1.0};
  EXPECT_NEAR(model.predict(row), 3.0 + 2.0 + 5.0, 1e-6);
}

TEST(LinearRegression, RobustToNoise) {
  const auto d = linear_dataset(2000, 0.5, 4);
  LinearRegression model;
  model.fit(d);
  const auto preds = model.predict_all(d.x);
  EXPECT_GT(r2(d.y, preds), 0.95);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  LinearRegression model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Tobit, UncensoredMatchesLinearRegression) {
  const auto d = linear_dataset(500, 0.2, 5);
  TobitRegression tobit;
  tobit.fit(d);
  LinearRegression lr;
  lr.fit(d);
  std::vector<double> row{0.5, 0.5};
  EXPECT_NEAR(tobit.predict(row), lr.predict(row), 0.3);
}

TEST(Tobit, CensoringCorrectsDownwardBias) {
  // True y = 2 x + 1; censor y at 2.0. Plain LR under-fits the slope;
  // Tobit with censoring should predict higher at large x.
  util::Rng rng(6);
  const std::size_t n = 800;
  Dataset d;
  d.x = Matrix(n, 1);
  d.y.resize(n);
  std::vector<bool> censored(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 2.0);
    double y = 2.0 * x + 1.0 + rng.normal(0.0, 0.2);
    if (y > 2.0) {
      y = 2.0;
      censored[i] = true;
    }
    d.x(i, 0) = x;
    d.y[i] = y;
  }
  LinearRegression lr;
  lr.fit(d);
  TobitRegression tobit;
  tobit.set_censoring(censored);
  tobit.fit(d);
  const std::vector<double> big{2.0};
  EXPECT_GT(tobit.predict(big), lr.predict(big) + 0.2);
}

TEST(RegressionTree, FitsStepFunction) {
  const std::size_t n = 400;
  Dataset d;
  d.x = Matrix(n, 1);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / n;
    d.x(i, 0) = x;
    d.y[i] = x < 0.5 ? 1.0 : 9.0;
  }
  RegressionTree tree(TreeOptions{4, 4, 16});
  tree.fit(d);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.2}), 1.0, 0.1);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.8}), 9.0, 0.1);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(RegressionTree, PureLeafStopsSplitting) {
  Dataset d;
  d.x = Matrix(50, 1);
  d.y.assign(50, 3.0);
  RegressionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0}), 3.0);
}

TEST(GradientBoosting, BeatsMeanBaseline) {
  util::Rng rng(7);
  const std::size_t n = 600;
  Dataset d;
  d.x = Matrix(n, 2);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    d.x(i, 0) = x0;
    d.x(i, 1) = x1;
    d.y[i] = std::sin(3.0 * x0) + x1 * x1;  // nonlinear
  }
  GbrtOptions options;
  options.n_trees = 60;
  GradientBoosting model(options);
  model.fit(d);
  const auto preds = model.predict_all(d.x);
  EXPECT_GT(r2(d.y, preds), 0.8);
  EXPECT_EQ(model.tree_count(), 60u);
}

TEST(Mlp, LearnsLinearFunction) {
  const auto d = linear_dataset(800, 0.05, 8);
  MlpOptions options;
  options.epochs = 80;
  Mlp model(options);
  model.fit(d);
  const auto preds = model.predict_all(d.x);
  EXPECT_GT(r2(d.y, preds), 0.9);
}

TEST(Regressors, FitEmptyThrows) {
  Dataset empty;
  LinearRegression lr;
  EXPECT_THROW(lr.fit(empty), InvalidArgument);
  GradientBoosting gb;
  EXPECT_THROW(gb.fit(empty), InvalidArgument);
  Mlp mlp;
  EXPECT_THROW(mlp.fit(empty), InvalidArgument);
}

// -------------------------------------------------------------- Metrics --

TEST(MlMetrics, BasicValues) {
  const std::vector<double> truth{1.0, 2.0, 4.0};
  const std::vector<double> pred{1.0, 1.0, 8.0};
  EXPECT_DOUBLE_EQ(mae(truth, pred), (0.0 + 1.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(mse(truth, pred), (0.0 + 1.0 + 16.0) / 3.0);
  EXPECT_DOUBLE_EQ(underestimate_rate(truth, pred), 1.0 / 3.0);
  // accuracy: 1, 0.5, 0.5 -> 2/3.
  EXPECT_NEAR(prediction_accuracy(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(MlMetrics, R2PerfectAndMean) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2(truth, truth), 1.0);
  const std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_NEAR(r2(truth, mean_pred), 0.0, 1e-12);
}

TEST(MlMetrics, EmptyThrows) {
  EXPECT_THROW((void)mse({}, {}), InvalidArgument);
  EXPECT_THROW((void)prediction_accuracy(std::vector<double>{1.0}, {}),
               InvalidArgument);
}

}  // namespace
}  // namespace lumos::ml
