// Tests for the core façade: study construction, takeaway checks, and the
// Table II backfill study.
#include <gtest/gtest.h>

#include "core/backfill_study.hpp"
#include "core/study.hpp"
#include "core/takeaways.hpp"
#include "util/error.hpp"

namespace lumos::core {
namespace {

StudyOptions small_options(std::vector<std::string> systems = {}) {
  StudyOptions options;
  options.seed = 5;
  options.duration_days = 2.0;
  options.systems = std::move(systems);
  return options;
}

TEST(Study, BuildsAllFiveByDefault) {
  const CrossSystemStudy study(small_options());
  EXPECT_EQ(study.traces().size(), 5u);
  EXPECT_EQ(study.trace("mira").spec().name, "Mira");
  EXPECT_EQ(study.trace("BlueWaters").spec().name, "BlueWaters");
}

TEST(Study, SubsetSelection) {
  const CrossSystemStudy study(small_options({"Theta", "Philly"}));
  EXPECT_EQ(study.traces().size(), 2u);
  EXPECT_THROW((void)study.trace("Mira"), InvalidArgument);
}

TEST(Study, UnknownSystemThrows) {
  EXPECT_THROW(CrossSystemStudy(small_options({"Summit"})), InvalidArgument);
}

TEST(Study, FromProvidedTraces) {
  CrossSystemStudy synth_study(small_options({"Theta"}));
  std::vector<trace::Trace> traces{synth_study.trace("Theta")};
  const CrossSystemStudy study(std::move(traces));
  EXPECT_EQ(study.traces().size(), 1u);
  EXPECT_THROW(CrossSystemStudy(std::vector<trace::Trace>{}),
               InvalidArgument);
}

TEST(Study, AnalysesCoverEverySystem) {
  const CrossSystemStudy study(small_options({"Theta", "Helios"}));
  EXPECT_EQ(study.geometries().size(), 2u);
  EXPECT_EQ(study.arrivals().size(), 2u);
  EXPECT_EQ(study.dominations().size(), 2u);
  EXPECT_EQ(study.utilizations().size(), 2u);
  EXPECT_EQ(study.waitings().size(), 2u);
  EXPECT_EQ(study.failures().size(), 2u);
  EXPECT_EQ(study.repetitions().size(), 2u);
  EXPECT_EQ(study.queue_behaviors().size(), 2u);
  EXPECT_EQ(study.user_statuses().size(), 2u);
}

TEST(Study, FullReportContainsEveryFigure) {
  const CrossSystemStudy study(small_options({"Theta"}));
  const auto report = study.full_report();
  for (const char* needle :
       {"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 7",
        "Fig 8", "Fig 9", "Fig 10", "Fig 11"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(Takeaways, ProducesEightChecks) {
  const CrossSystemStudy study(small_options());
  const auto checks = check_takeaways(study);
  ASSERT_EQ(checks.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(checks[i].number, static_cast<int>(i) + 1);
    EXPECT_FALSE(checks[i].claim.empty());
    EXPECT_FALSE(checks[i].evidence.empty());
  }
  EXPECT_FALSE(render_takeaways(checks).empty());
}

TEST(Takeaways, MissingSystemsReported) {
  const CrossSystemStudy study(small_options({"Theta"}));
  const auto checks = check_takeaways(study);
  // With only Theta, cross-system claims cannot hold.
  EXPECT_FALSE(checks[0].holds);
  EXPECT_EQ(checks[0].evidence, "missing systems");
}

TEST(BackfillStudy, ComparesBothConfigs) {
  const CrossSystemStudy study(small_options({"Theta"}));
  const auto cmp = compare_backfill(study.trace("Theta"));
  EXPECT_EQ(cmp.system, "Theta");
  EXPECT_GT(cmp.relaxed.jobs, 0u);
  EXPECT_EQ(cmp.relaxed.jobs, cmp.adaptive.jobs);
  EXPECT_GT(cmp.relaxed.utilization, 0.0);
}

TEST(BackfillStudy, SkipsTracesWithoutWalltime) {
  const CrossSystemStudy study(small_options({"Theta", "Philly"}));
  const auto rows = run_backfill_study(study.traces());
  ASSERT_EQ(rows.size(), 1u);  // Philly skipped (no walltime requests)
  EXPECT_EQ(rows[0].system, "Theta");
}

TEST(BackfillStudy, IdenticalAcrossThreadCounts) {
  // The study fans per-trace simulations out over a ThreadPool; Table II
  // must not depend on the worker count.
  const CrossSystemStudy study(small_options({"Theta", "BlueWaters"}));
  BackfillStudyConfig serial_config;
  serial_config.threads = 1;
  BackfillStudyConfig wide_config;
  wide_config.threads = 4;
  const auto serial = run_backfill_study(study.traces(), serial_config);
  const auto wide = run_backfill_study(study.traces(), wide_config);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].system, wide[i].system);
    EXPECT_EQ(serial[i].relaxed.avg_wait, wide[i].relaxed.avg_wait);
    EXPECT_EQ(serial[i].adaptive.avg_wait, wide[i].adaptive.avg_wait);
    EXPECT_EQ(serial[i].relaxed.avg_bounded_slowdown,
              wide[i].relaxed.avg_bounded_slowdown);
    EXPECT_EQ(serial[i].adaptive.avg_bounded_slowdown,
              wide[i].adaptive.avg_bounded_slowdown);
    EXPECT_EQ(serial[i].relaxed.utilization, wide[i].relaxed.utilization);
    EXPECT_EQ(serial[i].adaptive.utilization, wide[i].adaptive.utilization);
  }
}

TEST(BackfillStudy, RenderShowsPaperColumns) {
  const CrossSystemStudy study(small_options({"Theta"}));
  const auto rows = run_backfill_study(study.traces());
  const auto text = render_backfill_study(rows);
  for (const char* needle : {"wait", "bsld", "util", "violation",
                             "Relaxed", "Adaptive", "Improved"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace lumos::core
