// lumos::supervise tests: the supervisor against *real* child processes
// (tests/misbehaving_child.cpp), covering outcome classification, the
// SIGTERM -> grace -> SIGKILL escalation, stderr-tail ring capture,
// deterministic retry/backoff, the resumable journal (including torn
// tails), and SIGKILL-proof atomic JSON writes.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "supervise/journal.hpp"
#include "supervise/process.hpp"
#include "supervise/supervise.hpp"
#include "util/error.hpp"

#ifndef LUMOS_MISBEHAVING_CHILD
#error "build must define LUMOS_MISBEHAVING_CHILD (see tests/CMakeLists.txt)"
#endif

namespace lumos::supervise {
namespace {

namespace fs = std::filesystem;

#ifdef LUMOS_FAILPOINTS
constexpr bool kFailpointsCompiled = true;
#else
constexpr bool kFailpointsCompiled = false;
#endif

ChildSpec child_spec(std::vector<std::string> args) {
  ChildSpec spec;
  spec.argv = {LUMOS_MISBEHAVING_CHILD};
  spec.argv.insert(spec.argv.end(), args.begin(), args.end());
  return spec;
}

/// Unique scratch path; removed on destruction.
struct ScratchFile {
  fs::path path;
  explicit ScratchFile(const std::string& name)
      : path(fs::temp_directory_path() /
             ("lumos_supervise_" + name + "_" +
              std::to_string(static_cast<long>(::getpid())))) {
    fs::remove(path);
  }
  ~ScratchFile() { fs::remove(path); }
};

// ------------------------------------------------ outcome classification --

TEST(RunChild, CleanChildExitsOkWithCapturedReport) {
  const ChildResult result = run_child(child_spec({"clean"}));
  EXPECT_EQ(result.outcome, ChildOutcome::Exited);
  EXPECT_EQ(result.exit_code, 0);
  // The one stdout line must be a parsable report document.
  const obs::Json doc = obs::Json::parse(result.stdout_text);
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("metrics")->find("fixture.value")->as_double(),
                   1.0);
  // rusage came back with the exit status.
  EXPECT_GT(result.max_rss_kb, 0);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(RunChild, ExitCodeIsCaptured) {
  const ChildResult result = run_child(child_spec({"exit", "3"}));
  EXPECT_EQ(result.outcome, ChildOutcome::Exited);
  EXPECT_EQ(result.exit_code, 3);
}

TEST(RunChild, CrashReportsTerminatingSignal) {
  const ChildResult result = run_child(child_spec({"crash"}));
  EXPECT_EQ(result.outcome, ChildOutcome::Signaled);
  EXPECT_EQ(result.term_signal, SIGABRT);
}

TEST(RunChild, ExecFailureSurfacesAsExit127) {
  ChildSpec spec;
  spec.argv = {"/nonexistent/definitely-not-a-binary"};
  const ChildResult result = run_child(spec);
  EXPECT_EQ(result.outcome, ChildOutcome::Exited);
  EXPECT_EQ(result.exit_code, 127);
  EXPECT_NE(result.stderr_tail.find("exec failed"), std::string::npos);
}

TEST(RunChild, EmptyArgvIsAPreconditionViolation) {
  EXPECT_THROW((void)run_child(ChildSpec{}), InvalidArgument);
}

// ------------------------------------------------- deadline & escalation --

TEST(RunChild, HangTimesOutAndSigtermSuffices) {
  ChildSpec spec = child_spec({"hang"});
  spec.deadline_seconds = 0.3;
  spec.grace_seconds = 5.0;
  const ChildResult result = run_child(spec);
  EXPECT_EQ(result.outcome, ChildOutcome::Timeout);
  EXPECT_EQ(result.term_signal, SIGTERM);
  EXPECT_FALSE(result.escalated_to_kill);
  EXPECT_LT(result.wall_seconds, 4.0);  // never waited out the grace
}

TEST(RunChild, StubbornChildEscalatesToSigkill) {
  ChildSpec spec = child_spec({"stubborn"});
  spec.deadline_seconds = 0.3;
  spec.grace_seconds = 0.3;
  const ChildResult result = run_child(spec);
  EXPECT_EQ(result.outcome, ChildOutcome::Timeout);
  EXPECT_EQ(result.term_signal, SIGKILL);
  EXPECT_TRUE(result.escalated_to_kill);
}

// ----------------------------------------------------------- io capture --

TEST(RunChild, StderrTailKeepsOnlyTheLastBytes) {
  ChildSpec spec = child_spec({"huge-stderr"});
  spec.stderr_tail_bytes = 1024;
  const ChildResult result = run_child(spec);
  EXPECT_EQ(result.exit_code, 3);
  EXPECT_LE(result.stderr_tail.size(), 1024u);
  // ~2 MiB actually flowed; the tail holds the *end* of the stream.
  EXPECT_GT(result.stderr_bytes, 1024u * 1024u);
  EXPECT_NE(result.stderr_tail.find("END-OF-STDERR-MARKER"),
            std::string::npos);
}

TEST(RunChild, PartialJsonIsCapturedVerbatim) {
  const ChildResult result = run_child(child_spec({"partial-json"}));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text, "{\"figure\": \"Fixture\", \"metrics\": {");
  EXPECT_THROW((void)obs::Json::parse(result.stdout_text), Error);
}

TEST(RunChild, StdoutCapIsEnforced) {
  ChildSpec spec = child_spec({"clean"});
  spec.stdout_limit_bytes = 8;
  const ChildResult result = run_child(spec);
  EXPECT_EQ(result.stdout_text.size(), 8u);
  EXPECT_TRUE(result.stdout_truncated);
}

// ------------------------------------------------------- retry & backoff --

TEST(Supervise, BackoffScheduleIsDeterministicAndCapped) {
  Options options;
  options.backoff_base_seconds = 0.5;
  options.backoff_cap_seconds = 3.0;
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(options, 1), 0.5);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(options, 2), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(options, 3), 2.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(options, 4), 3.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(options, 9), 3.0);
}

TEST(Supervise, FlakyChildSucceedsOnRetryWithRecordedBackoff) {
  ScratchFile state("flaky_state");
  Options options;
  options.spec = child_spec({"flaky", state.path.string()});
  options.max_attempts = 3;
  options.backoff_base_seconds = 0.25;
  std::vector<double> slept;
  options.sleep = [&](double seconds) { slept.push_back(seconds); };
  std::size_t observed = 0;
  options.on_attempt = [&](const Attempt&, std::size_t index) {
    EXPECT_EQ(index, observed + 1);
    ++observed;
  };

  const SuperviseResult result = run_supervised(options);
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.attempts.size(), 2u);
  EXPECT_EQ(observed, 2u);
  EXPECT_EQ(status_string(result.attempts[0]), "crashed:SIGABRT");
  EXPECT_EQ(status_string(result.attempts[1]), "ok");
  // Exactly one backoff sleep, of exactly the base delay.
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_DOUBLE_EQ(slept[0], 0.25);
}

TEST(Supervise, UsageExitIsNeverRetried) {
  Options options;
  options.spec = child_spec({"exit", "2"});
  options.max_attempts = 3;
  options.sleep = [](double) {};
  const SuperviseResult result = run_supervised(options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts.size(), 1u);  // exit 2 = usage: not transient
  EXPECT_EQ(status_string(result.final_attempt()), "failed");
  EXPECT_EQ(result.final_attempt().child.exit_code, 2);
}

TEST(Supervise, RuntimeExitRetriesUpToTheBudget) {
  Options options;
  options.spec = child_spec({"exit", "3"});
  options.max_attempts = 3;
  std::vector<double> slept;
  options.sleep = [&](double seconds) { slept.push_back(seconds); };
  const SuperviseResult result = run_supervised(options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts.size(), 3u);
  EXPECT_EQ(slept.size(), 2u);  // backoff before attempts 2 and 3
  EXPECT_EQ(result.final_attempt().detail, "exit code 3");
}

TEST(Supervise, TimeoutsAreNotRetriedUnlessOptedIn) {
  Options options;
  options.spec = child_spec({"hang"});
  options.spec.deadline_seconds = 0.2;
  options.spec.grace_seconds = 2.0;
  options.max_attempts = 3;
  options.sleep = [](double) {};
  const SuperviseResult result = run_supervised(options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts.size(), 1u);
  EXPECT_EQ(status_string(result.final_attempt()), "timeout");
}

TEST(Supervise, ValidationFailureClassifiesExitZeroAsFailed) {
  Options options;
  options.spec = child_spec({"partial-json"});
  options.max_attempts = 2;
  options.sleep = [](double) {};
  options.validate = [](const ChildResult& child) -> std::string {
    try {
      (void)obs::Json::parse(child.stdout_text);
      return "";
    } catch (const Error& e) {
      return std::string("unparsable: ") + e.what();
    }
  };
  const SuperviseResult result = run_supervised(options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts.size(), 2u);  // deterministic garbage retries
  EXPECT_EQ(status_string(result.final_attempt()), "failed");
  EXPECT_NE(result.final_attempt().detail.find("unparsable"),
            std::string::npos);
}

// -------------------------------------------------------------- journal --

obs::Json sample_header() {
  obs::Json header = obs::Json::object();
  header["schema_version"] = 1;
  header["seed"] = 42;
  return header;
}

TEST(JournalTest, RoundTripsHeaderAndRecords) {
  ScratchFile file("journal");
  {
    Journal journal(file.path.string(), /*truncate=*/true);
    journal.write_header(sample_header());
    JournalRecord record;
    record.harness = "fig4_waiting";
    record.attempt = 2;
    record.status = "ok";
    record.exit_code = 0;
    record.wall_seconds = 1.5;
    record.max_rss_kb = 4096;
    record.report = obs::Json::object();
    record.report["metrics"] = obs::Json::object();
    journal.append(record);

    JournalRecord crashed;
    crashed.harness = "fig6_status";
    crashed.status = "crashed:SIGSEGV";
    crashed.term_signal = SIGSEGV;
    crashed.stderr_tail = "boom";
    journal.append(crashed);
  }
  const auto contents = Journal::read(file.path.string());
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_NE(contents.header.find("seed"), nullptr);
  EXPECT_EQ(contents.header.find("seed")->as_int(), 42);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0].harness, "fig4_waiting");
  EXPECT_EQ(contents.records[0].attempt, 2u);
  EXPECT_EQ(contents.records[0].status, "ok");
  EXPECT_DOUBLE_EQ(contents.records[0].wall_seconds, 1.5);
  EXPECT_EQ(contents.records[1].status, "crashed:SIGSEGV");
  EXPECT_EQ(contents.records[1].term_signal, SIGSEGV);
  EXPECT_EQ(contents.records[1].stderr_tail, "boom");

  const auto completed = contents.completed();
  EXPECT_EQ(completed.size(), 1u);  // only "ok" records carry reports
  EXPECT_EQ(completed.count("fig4_waiting"), 1u);
}

TEST(JournalTest, TornTailLineIsIgnored) {
  ScratchFile file("torn");
  {
    Journal journal(file.path.string(), /*truncate=*/true);
    journal.write_header(sample_header());
    JournalRecord record;
    record.harness = "table1_traces";
    record.status = "ok";
    record.report = obs::Json::object();
    journal.append(record);
  }
  // Simulate a crash mid-append: a half-written final line.
  std::ofstream(file.path, std::ios::app)
      << "{\"kind\":\"attempt\",\"harness\":\"fig1";
  const auto contents = Journal::read(file.path.string());
  EXPECT_TRUE(contents.torn_tail);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0].harness, "table1_traces");
}

TEST(JournalTest, MissingFileReadsAsEmpty) {
  const auto contents =
      Journal::read("/nonexistent/dir/BENCH_journal.jsonl");
  EXPECT_TRUE(contents.header.is_null());
  EXPECT_TRUE(contents.records.empty());
  EXPECT_FALSE(contents.torn_tail);
}

TEST(JournalTest, HeaderlessFileYieldsNoResumeState) {
  ScratchFile file("headerless");
  std::ofstream(file.path) << "{\"kind\":\"attempt\",\"harness\":\"x\","
                              "\"status\":\"ok\",\"report\":{}}\n";
  const auto contents = Journal::read(file.path.string());
  EXPECT_TRUE(contents.header.is_null());
  EXPECT_TRUE(contents.records.empty());
}

// ------------------------------------------------- atomic-write survival --

TEST(AtomicWrite, SurvivesSigkillAtAnArbitraryInstant) {
  ScratchFile target("atomic_target");
  ChildSpec spec = child_spec({"atomic-loop", target.path.string()});
  // The child rewrites the file as fast as it can and ignores SIGTERM;
  // the deadline machinery SIGKILLs it somewhere mid-write.
  spec.deadline_seconds = 0.4;
  spec.grace_seconds = 0.05;
  const ChildResult result = run_child(spec);
  EXPECT_EQ(result.outcome, ChildOutcome::Timeout);
  EXPECT_TRUE(result.escalated_to_kill);
  // Whatever instant the kill landed, the target is a complete document.
  ASSERT_TRUE(std::filesystem::exists(target.path));
  std::ifstream in(target.path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const obs::Json doc = obs::Json::parse(text);
  ASSERT_NE(doc.find("iteration"), nullptr);
  EXPECT_GE(doc.find("iteration")->as_int(), 0);
  // Clean up temp-file leftovers from the killed writer.
  for (const auto& entry :
       fs::directory_iterator(target.path.parent_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(target.path.filename().string() + ".tmp", 0) == 0) {
      fs::remove(entry.path());
    }
  }
}

TEST(AtomicWrite, ArmedFailpointMapsToFaultExitAndLeavesNoFile) {
  ScratchFile target("failpoint_target");
  const ChildResult result =
      run_child(child_spec({"failpoint-write", target.path.string()}));
  if (kFailpointsCompiled) {
    EXPECT_EQ(result.exit_code, 4);  // typed InjectedFault -> kExitFault
    EXPECT_NE(result.stderr_tail.find("injected fault"), std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(target.path));
  } else {
    EXPECT_EQ(result.exit_code, 0);  // site compiled out: write succeeds
    EXPECT_TRUE(std::filesystem::exists(target.path));
  }
}

}  // namespace
}  // namespace lumos::supervise
