// Tests for sim::sweep_shards — the determinism contract above all:
// sharded execution must be bit-identical to the serial reference, the
// merged observability snapshot must be a pure function of the inputs,
// and failures must surface deterministically.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace lumos::sim {
namespace {

std::vector<trace::Trace> two_traces() {
  std::vector<trace::Trace> traces;
  synth::GeneratorOptions options;
  options.duration_days = 1.0;
  traces.push_back(synth::generate_system("Theta", options));
  traces.push_back(synth::generate_system("Philly", options));
  return traces;
}

std::vector<SweepPoint> grid_points() {
  std::vector<SweepPoint> points;
  for (std::size_t trace_index : {std::size_t{0}, std::size_t{1}}) {
    for (auto policy : {PolicyKind::Fcfs, PolicyKind::Sjf}) {
      for (auto kind : {BackfillKind::Easy, BackfillKind::AdaptiveRelaxed}) {
        SweepPoint point;
        point.trace_index = trace_index;
        point.config.policy = policy;
        point.config.backfill.kind = kind;
        point.label = std::to_string(trace_index) + "." +
                      std::string(to_string(policy)) + "." +
                      std::string(to_string(kind));
        points.push_back(point);
      }
    }
  }
  return points;
}

// Histograms carry wall-clock timings: counts are deterministic, sums are
// not. Compare everything else exactly and histograms by (name, count).
void expect_snapshot_equivalent(const obs::Snapshot& a,
                                const obs::Snapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
    EXPECT_EQ(a.histograms[i].count, b.histograms[i].count);
  }
}

TEST(SweepShards, ShardedRunsBitIdenticalToSerial) {
  const auto traces = two_traces();
  const auto points = grid_points();

  SweepOptions serial_options;
  serial_options.threads = 1;
  const auto serial = sweep_shards(traces, points, serial_options);
  ASSERT_EQ(serial.shards.size(), points.size());

  for (std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    SweepOptions options;
    options.threads = threads;
    const auto sharded = sweep_shards(traces, points, options);
    ASSERT_EQ(sharded.shards.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      ASSERT_TRUE(sharded.shards[i].result == serial.shards[i].result)
          << "result diverged at point " << points[i].label << " with "
          << threads << " threads";
      ASSERT_TRUE(sharded.shards[i].metrics == serial.shards[i].metrics)
          << "metrics diverged at point " << points[i].label;
      expect_snapshot_equivalent(sharded.shards[i].observability,
                                 serial.shards[i].observability);
    }
    expect_snapshot_equivalent(sharded.merged, serial.merged);
  }
}

TEST(SweepShards, MergedCountersAreShardSums) {
  const auto traces = two_traces();
  std::vector<SweepPoint> points(2);
  points[0].trace_index = 0;
  points[1].trace_index = 1;
  const auto outcome = sweep_shards(traces, points);

  auto events_of = [](const obs::Snapshot& snap) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == "sim.events") return c.value;
    }
    return 0;
  };
  const std::uint64_t merged = events_of(outcome.merged);
  EXPECT_GT(merged, 0u);
  EXPECT_EQ(merged, events_of(outcome.shards[0].observability) +
                        events_of(outcome.shards[1].observability));
}

TEST(SweepShards, RepeatsAmplifyCountersNotResults) {
  const auto traces = two_traces();
  std::vector<SweepPoint> point(1);

  SweepOptions once;
  const auto single = sweep_shards(traces, point, once);
  SweepOptions thrice;
  thrice.repeats = 3;
  const auto repeated = sweep_shards(traces, point, thrice);

  EXPECT_TRUE(single.shards[0].result == repeated.shards[0].result);
  EXPECT_TRUE(single.shards[0].metrics == repeated.shards[0].metrics);
  for (const auto& counter : repeated.merged.counters) {
    for (const auto& base : single.merged.counters) {
      if (base.name == counter.name) {
        EXPECT_EQ(counter.value, 3 * base.value) << counter.name;
      }
    }
  }
}

TEST(SweepShards, ValidatesPointsBeforeRunningAny) {
  const auto traces = two_traces();
  std::vector<SweepPoint> points(3);
  points[2].trace_index = 7;  // out of range
  points[2].label = "broken-point";
  try {
    (void)sweep_shards(traces, points);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("broken-point"), std::string::npos);
  }

  SweepOptions zero;
  zero.repeats = 0;
  EXPECT_THROW((void)sweep_shards(traces, points, zero), InvalidArgument);
}

TEST(SweepShards, EmptyInputsYieldEmptyOutcome) {
  const auto traces = two_traces();
  const auto outcome = sweep_shards(traces, {});
  EXPECT_TRUE(outcome.shards.empty());
  EXPECT_TRUE(outcome.merged.empty());
}

}  // namespace
}  // namespace lumos::sim
