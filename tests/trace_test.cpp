// Unit tests for the trace model, parsers and validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "trace/csv_formats.hpp"
#include "trace/swf.hpp"
#include "trace/system_spec.hpp"
#include "trace/trace.hpp"
#include "trace/validate.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace lumos::trace {
namespace {

Job make_job(double submit, double wait, double run, std::uint32_t cores,
             JobStatus status = JobStatus::Passed, std::uint32_t user = 0) {
  Job j;
  j.submit_time = submit;
  j.wait_time = wait;
  j.run_time = run;
  j.cores = cores;
  j.nodes = cores;
  j.status = status;
  j.user = user;
  return j;
}

// ----------------------------------------------------------------- Job ---

TEST(Job, DerivedQuantities) {
  const Job j = make_job(100.0, 50.0, 200.0, 4);
  EXPECT_DOUBLE_EQ(j.start_time(), 150.0);
  EXPECT_DOUBLE_EQ(j.end_time(), 350.0);
  EXPECT_DOUBLE_EQ(j.turnaround(), 250.0);
  EXPECT_DOUBLE_EQ(j.core_hours(), 4.0 * 200.0 / 3600.0);
}

TEST(Job, BoundedSlowdownUsesBound) {
  Job j = make_job(0.0, 90.0, 5.0, 1);  // short job: bound kicks in
  EXPECT_DOUBLE_EQ(j.bounded_slowdown(10.0), 95.0 / 10.0);
  j.run_time = 100.0;
  EXPECT_DOUBLE_EQ(j.bounded_slowdown(10.0), 190.0 / 100.0);
  j.wait_time = 0.0;
  EXPECT_DOUBLE_EQ(j.bounded_slowdown(10.0), 1.0);  // floored at 1
}

TEST(Job, RequestedTimeSentinel) {
  Job j = make_job(0, 0, 10, 1);
  EXPECT_FALSE(j.has_requested_time());
  j.requested_time = 3600.0;
  EXPECT_TRUE(j.has_requested_time());
}

TEST(JobStatus, Names) {
  EXPECT_EQ(to_string(JobStatus::Passed), "Passed");
  EXPECT_EQ(to_string(JobStatus::Failed), "Failed");
  EXPECT_EQ(to_string(JobStatus::Killed), "Killed");
}

// ---------------------------------------------------------- SystemSpec ---

TEST(SystemSpec, FiveSystemsHaveTableOneCapacities) {
  EXPECT_EQ(mira_spec().nodes, 49152u);
  EXPECT_EQ(mira_spec().cores, 786432u);
  EXPECT_EQ(theta_spec().cores, 281088u);
  EXPECT_EQ(blue_waters_spec().gpus, 4228u);
  EXPECT_EQ(philly_spec().gpus, 2490u);
  EXPECT_EQ(philly_spec().virtual_clusters, 14);
  EXPECT_EQ(helios_spec().gpus, 6416u);
  EXPECT_EQ(all_system_specs().size(), 5u);
}

TEST(SystemSpec, PrimaryCapacityFollowsKind) {
  EXPECT_EQ(mira_spec().primary_capacity(), 786432u);
  EXPECT_EQ(philly_spec().primary_capacity(), 2490u);
}

TEST(SystemSpec, HpcSizeCategoriesUseFractions) {
  const auto spec = mira_spec();  // capacity 786432
  EXPECT_EQ(spec.size_category(1000), SizeCategory::Small);
  EXPECT_EQ(spec.size_category(100000), SizeCategory::Middle);  // ~12.7%
  EXPECT_EQ(spec.size_category(300000), SizeCategory::Large);   // ~38%
}

TEST(SystemSpec, DlSizeCategoriesUseGpuCounts) {
  const auto spec = philly_spec();
  EXPECT_EQ(spec.size_category(1), SizeCategory::Small);
  EXPECT_EQ(spec.size_category(8), SizeCategory::Middle);
  EXPECT_EQ(spec.size_category(9), SizeCategory::Large);
}

TEST(SystemSpec, MinimalCategoryOptIn) {
  const auto spec = philly_spec();
  EXPECT_EQ(spec.size_category(1, true), SizeCategory::Minimal);
  EXPECT_EQ(spec.size_category(1, false), SizeCategory::Small);
}

TEST(SystemSpec, LengthCategories) {
  EXPECT_EQ(SystemSpec::length_category(30.0), LengthCategory::Short);
  EXPECT_EQ(SystemSpec::length_category(30.0, true), LengthCategory::Minimal);
  EXPECT_EQ(SystemSpec::length_category(7200.0), LengthCategory::Middle);
  EXPECT_EQ(SystemSpec::length_category(2.0 * 86400.0), LengthCategory::Long);
}

TEST(SystemSpec, FindByNameAndAlias) {
  EXPECT_TRUE(find_system_spec("mira").has_value());
  EXPECT_TRUE(find_system_spec("Blue Waters").has_value());
  EXPECT_TRUE(find_system_spec("bw").has_value());
  EXPECT_FALSE(find_system_spec("frontier").has_value());
}

TEST(SystemSpec, TableOneCandidatesMatchPaper) {
  const auto candidates = table1_candidates();
  EXPECT_EQ(candidates.size(), 9u);
  int selected = 0;
  for (const auto& c : candidates) selected += c.selected;
  EXPECT_EQ(selected, 5);
  // The Supercloud exclusion was for inconsistency, not scale.
  for (const auto& c : candidates) {
    if (c.name == "Supercloud") {
      EXPECT_TRUE(c.large_scale);
      EXPECT_FALSE(c.info_consistent);
      EXPECT_FALSE(c.selected);
    }
  }
}

// --------------------------------------------------------------- Trace ---

TEST(Trace, SortAssignsIds) {
  Trace t(mira_spec());
  t.add(make_job(30, 0, 1, 1));
  t.add(make_job(10, 0, 1, 1));
  t.add(make_job(20, 0, 1, 1));
  EXPECT_FALSE(t.is_sorted_by_submit());
  t.sort_by_submit();
  EXPECT_TRUE(t.is_sorted_by_submit());
  EXPECT_DOUBLE_EQ(t[0].submit_time, 10.0);
  EXPECT_EQ(t[2].id, 2u);
}

TEST(Trace, WindowFiltersAndRebases) {
  Trace t(mira_spec());
  for (int i = 0; i < 10; ++i) t.add(make_job(i * 100.0, 0, 10, 1));
  t.sort_by_submit();
  const auto w = t.window(200.0, 500.0);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0].submit_time, 0.0);
  EXPECT_EQ(w.spec().epoch_unix, t.spec().epoch_unix + 200);
}

TEST(Trace, InterarrivalTimes) {
  Trace t(mira_spec());
  t.add(make_job(0, 0, 1, 1));
  t.add(make_job(5, 0, 1, 1));
  t.add(make_job(20, 0, 1, 1));
  t.sort_by_submit();
  const auto gaps = t.interarrival_times();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 5.0);
  EXPECT_DOUBLE_EQ(gaps[1], 15.0);
}

TEST(Trace, UserCountAndCoreHours) {
  Trace t(mira_spec());
  t.add(make_job(0, 0, 3600, 2, JobStatus::Passed, 7));
  t.add(make_job(1, 0, 3600, 3, JobStatus::Passed, 7));
  t.add(make_job(2, 0, 3600, 1, JobStatus::Passed, 8));
  EXPECT_EQ(t.user_count(), 2u);
  EXPECT_DOUBLE_EQ(t.total_core_hours(), 6.0);
}

TEST(Trace, EndTime) {
  Trace t(mira_spec());
  t.add(make_job(0, 10, 100, 1));
  t.add(make_job(50, 0, 10, 1));
  EXPECT_DOUBLE_EQ(t.end_time(), 110.0);
  EXPECT_DOUBLE_EQ(t.last_submit(), 50.0);
}

// ----------------------------------------------------------------- SWF ---

TEST(Swf, RoundTrip) {
  Trace t(theta_spec());
  Job j = make_job(100, 20, 300, 64, JobStatus::Killed, 5);
  j.requested_time = 600;
  t.add(j);
  t.add(make_job(200, 0, 50, 128, JobStatus::Failed, 6));
  t.sort_by_submit();

  std::ostringstream out;
  write_swf(out, t);
  std::istringstream in(out.str());
  const auto back = read_swf(in, theta_spec());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].submit_time, 100.0);
  EXPECT_DOUBLE_EQ(back[0].wait_time, 20.0);
  EXPECT_DOUBLE_EQ(back[0].run_time, 300.0);
  EXPECT_EQ(back[0].cores, 64u);
  EXPECT_EQ(back[0].status, JobStatus::Killed);
  EXPECT_DOUBLE_EQ(back[0].requested_time, 600.0);
  EXPECT_EQ(back[1].status, JobStatus::Failed);
  EXPECT_EQ(back[1].user, 6u);
}

TEST(Swf, SkipsCommentsAndUnknownRuntime) {
  const std::string swf =
      "; a comment\n"
      "1 0 0 -1 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n"
      "2 10 5 100 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n";
  std::istringstream in(swf);
  const auto t = read_swf(in, theta_spec());
  ASSERT_EQ(t.size(), 1u);  // first dropped (unknown runtime)
  EXPECT_DOUBLE_EQ(t[0].run_time, 100.0);
}

TEST(Swf, RejectsMalformed) {
  std::istringstream bad("1 2 3\n");
  EXPECT_THROW(read_swf(bad, theta_spec()), ParseError);
  std::istringstream nan_field(
      "x 0 0 100 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(read_swf(nan_field, theta_spec()), ParseError);
}

// ----------------------------------------------------------- CSV forms ---

TEST(LumosCsv, RoundTrip) {
  Trace t(philly_spec());
  Job j = make_job(5, 2, 60, 8, JobStatus::Passed, 3);
  j.kind = ResourceKind::Gpu;
  j.virtual_cluster = 4;
  t.add(j);
  t.sort_by_submit();
  std::ostringstream out;
  write_lumos_csv(out, t);
  std::istringstream in(out.str());
  const auto back = read_lumos_csv(in, philly_spec());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].kind, ResourceKind::Gpu);
  EXPECT_EQ(back[0].virtual_cluster, 4);
  EXPECT_EQ(back[0].status, JobStatus::Passed);
}

TEST(DlCsv, ParsesPhillyDialect) {
  const std::string csv =
      "job_id,user,vc,submit_time,queue_delay,run_time,gpus,status\n"
      "1,10,3,0,5,600,1,Pass\n"
      "2,11,2,30,-2,100,16,Killed\n";
  std::istringstream in(csv);
  const auto t = read_dl_csv(in, philly_spec());
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].cores, 1u);
  EXPECT_EQ(t[0].virtual_cluster, 3);
  EXPECT_EQ(t[0].kind, ResourceKind::Gpu);
  EXPECT_DOUBLE_EQ(t[1].wait_time, 0.0);  // negative clamped
  EXPECT_EQ(t[1].status, JobStatus::Killed);
  EXPECT_EQ(t[1].nodes, 2u);  // 16 GPUs over 8-GPU nodes
}

TEST(DlCsv, MissingColumnThrows) {
  std::istringstream in("job_id,user\n1,2\n");
  EXPECT_THROW(read_dl_csv(in, philly_spec()), ParseError);
}

TEST(AlcfCsv, ParsesTimestamps) {
  auto spec = theta_spec();
  spec.epoch_unix = 1000;
  const std::string csv =
      "JOB_ID,USER,QUEUED_TIMESTAMP,START_TIMESTAMP,END_TIMESTAMP,"
      "NODES_USED,CORES_USED,WALLTIME_SECONDS,EXIT_STATUS\n"
      "7,3,1100,1160,1460,2,128,600,0\n"
      "8,3,1200,1200,1300,1,64,600,-9\n";
  std::istringstream in(csv);
  const auto t = read_alcf_csv(in, spec);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].submit_time, 100.0);
  EXPECT_DOUBLE_EQ(t[0].wait_time, 60.0);
  EXPECT_DOUBLE_EQ(t[0].run_time, 300.0);
  EXPECT_EQ(t[0].status, JobStatus::Passed);
  EXPECT_EQ(t[1].status, JobStatus::Killed);
}

TEST(AlcfCsv, RejectsNonMonotonicTimestamps) {
  const std::string csv =
      "JOB_ID,USER,QUEUED_TIMESTAMP,START_TIMESTAMP,END_TIMESTAMP,"
      "NODES_USED,CORES_USED,WALLTIME_SECONDS,EXIT_STATUS\n"
      "7,3,1100,1000,1460,2,128,600,0\n";
  std::istringstream in(csv);
  EXPECT_THROW(read_alcf_csv(in, theta_spec()), ParseError);
}

// ------------------------------------------------------------ validate ---

TEST(Validate, CleanTracePasses) {
  Trace t(theta_spec());
  t.add(make_job(0, 0, 100, 64));
  t.sort_by_submit();
  const auto report = validate(t);
  EXPECT_TRUE(report.consistent());
  EXPECT_TRUE(report.issues().empty());
}

TEST(Validate, DetectsSupercloudStyleInconsistency) {
  Trace t(theta_spec());  // capacity 281088 cores
  t.add(make_job(0, 0, 100, 500000));
  t.sort_by_submit();
  const auto report = validate(t);
  EXPECT_FALSE(report.consistent());
  ASSERT_FALSE(report.issues().empty());
  EXPECT_EQ(report.issues()[0].check, "capacity");
  EXPECT_NE(report.to_string().find("FATAL"), std::string::npos);
}

TEST(Validate, WarnsOnZeroCoresAndUnsorted) {
  Trace t(theta_spec());
  auto j = make_job(10, 0, 100, 0);
  t.add(j);
  t.add(make_job(5, 0, 100, 64));
  const auto report = validate(t);
  EXPECT_TRUE(report.consistent());  // warnings only
  EXPECT_EQ(report.issues().size(), 2u);
}

TEST(Validate, WarnsOnWalltimeUnderrun) {
  Trace t(theta_spec());
  auto j = make_job(0, 0, 1000, 64);
  j.requested_time = 100.0;  // ran 10x its request
  t.add(j);
  const auto report = validate(t);
  bool found = false;
  for (const auto& i : report.issues()) {
    found |= i.check == "walltime-underrun";
  }
  EXPECT_TRUE(found);
}

TEST(Validate, WalltimeUnderrunHasFivePercentGrace) {
  Trace t(theta_spec());
  auto inside = make_job(0, 0, 104.9, 64);
  inside.requested_time = 100.0;  // within the 5% grace band
  t.add(inside);
  auto outside = make_job(1, 0, 105.1, 64);
  outside.requested_time = 100.0;  // just past it
  t.add(outside);
  const auto report = validate(t);
  std::size_t underruns = 0;
  for (const auto& i : report.issues()) {
    if (i.check == "walltime-underrun") underruns = i.job_count;
  }
  EXPECT_EQ(underruns, 1u);
}

TEST(Validate, FatalCountIsCachedAndMatchesIssues) {
  ValidationReport report;
  EXPECT_TRUE(report.consistent());
  report.add({IssueSeverity::Warning, "w", "warning", 1});
  EXPECT_TRUE(report.consistent());
  report.add({IssueSeverity::Fatal, "f", "fatal", 1});
  report.add({IssueSeverity::Fatal, "f2", "fatal too", 1});
  EXPECT_FALSE(report.consistent());
  EXPECT_EQ(report.fatal_count(), 2u);
  EXPECT_EQ(report.issues().size(), 3u);
}

// ------------------------------------------------------------ sanitize ---

TEST(Sanitize, QuarantinesCapacityViolations) {
  Trace t(theta_spec());  // capacity 281088 cores
  t.add(make_job(0, 0, 100, 64));
  t.add(make_job(5, 0, 100, 500000));  // Supercloud-style impossible job
  t.add(make_job(9, 0, 100, 128));
  t.sort_by_submit();
  const auto before = validate(t);
  ASSERT_FALSE(before.consistent());

  const auto repair = sanitize(t, before);
  EXPECT_EQ(repair.dropped_capacity, 1u);
  EXPECT_EQ(repair.dropped(), 1u);
  ASSERT_EQ(repair.quarantined.size(), 1u);
  EXPECT_EQ(repair.quarantined[0].cores, 500000u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(validate(t).consistent());
}

TEST(Sanitize, QuarantinesNegativeGeometryAndZeroCores) {
  Trace t(theta_spec());
  t.add(make_job(0, 0, 100, 64));
  auto negative = make_job(1, 0, 100, 64);
  negative.run_time = -5.0;
  t.add(negative);
  t.add(make_job(2, 0, 100, 0));  // zero cores
  t.sort_by_submit();
  const auto repair = sanitize(t, validate(t));
  EXPECT_EQ(repair.dropped_negative_geometry, 1u);
  EXPECT_EQ(repair.dropped_zero_cores, 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(validate(t).consistent());
  EXPECT_TRUE(validate(t).issues().empty());
}

TEST(Sanitize, ResortsWhenReportFlagsDisorder) {
  Trace t(theta_spec());
  t.add(make_job(10, 0, 100, 64));
  t.add(make_job(5, 0, 100, 64));
  const auto repair = sanitize(t, validate(t));
  EXPECT_TRUE(repair.resorted);
  EXPECT_EQ(repair.dropped(), 0u);
  EXPECT_TRUE(t.is_sorted_by_submit());
  EXPECT_DOUBLE_EQ(t.jobs()[0].submit_time, 5.0);
}

TEST(Sanitize, NoOpOnCleanTrace) {
  Trace t(theta_spec());
  t.add(make_job(0, 0, 100, 64));
  t.sort_by_submit();
  const auto repair = sanitize(t, validate(t));
  EXPECT_EQ(repair.dropped(), 0u);
  EXPECT_FALSE(repair.resorted);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NE(repair.to_string().find("nothing to repair"), std::string::npos);
}

TEST(Sanitize, ToStringNamesEveryRepair) {
  Trace t(theta_spec());
  t.add(make_job(5, 0, 100, 500000));
  t.add(make_job(0, 0, 100, 0));
  const auto repair = sanitize(t, validate(t));
  const auto text = repair.to_string();
  EXPECT_NE(text.find("capacity"), std::string::npos);
  EXPECT_NE(text.find("zero"), std::string::npos);
}

// ------------------------------------------------------- lenient parse ---

TEST(Swf, LenientBudgetAbsorbsBadRows) {
  const std::string swf =
      "; header\n"
      "1 0 0 100 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n"
      "not an swf row at all\n"
      "2 10 5 100 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n";
  std::istringstream in(swf);
  ParseOptions opts;
  opts.bad_row_budget = 1;
  ParseAudit audit;
  const auto t = read_swf(in, theta_spec(), opts, &audit);
  EXPECT_EQ(t.size(), 2u);  // both good rows survive
  ASSERT_EQ(audit.skipped_lines.size(), 1u);
  EXPECT_EQ(audit.skipped_lines[0], 3u);  // 1-based, comments counted
  EXPECT_FALSE(audit.clean());
}

TEST(Swf, BudgetExhaustionRethrowsTheOffendingError) {
  const std::string swf =
      "bad row one\n"
      "bad row two\n"
      "1 0 0 100 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n";
  std::istringstream in(swf);
  ParseOptions opts;
  opts.bad_row_budget = 1;  // second bad row exceeds the budget
  ParseAudit audit;
  try {
    (void)read_swf(in, theta_spec(), opts, &audit);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  ASSERT_EQ(audit.skipped_lines.size(), 1u);
  EXPECT_EQ(audit.skipped_lines[0], 1u);
}

TEST(Swf, StrictByDefaultWithLineContext) {
  std::istringstream in("1 2 3\n");
  try {
    (void)read_swf(in, theta_spec());
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(Swf, OriginPrefixesErrorContext) {
  std::istringstream in("garbage\n");
  ParseOptions opts;
  opts.origin = "theta.swf";
  try {
    (void)read_swf(in, theta_spec(), opts);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("theta.swf:1"), std::string::npos);
  }
}

TEST(Swf, AuditCountsUnknownRuntimeDrops) {
  const std::string swf =
      "1 0 0 -1 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n"
      "2 10 5 100 4 -1 -1 4 600 -1 1 3 -1 -1 -1 -1 -1 -1\n";
  std::istringstream in(swf);
  ParseAudit audit;
  const auto t = read_swf(in, theta_spec(), {}, &audit);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(audit.dropped_unknown_runtime, 1u);
  EXPECT_TRUE(audit.skipped_lines.empty());
  EXPECT_FALSE(audit.clean());
}

TEST(LumosCsv, LenientBudgetAbsorbsBadRows) {
  const std::string csv =
      "id,user,submit,wait,run,requested_time,nodes,cores,kind,status,vc\n"
      "1,2,0,5,100,200,1,4,cpu,pass,-1\n"
      "2,2,1,5,oops,200,1,4,cpu,pass,-1\n"
      "3,2,2,5,100,200,1,4,cpu,pass,-1\n";
  std::istringstream in(csv);
  ParseOptions opts;
  opts.bad_row_budget = 1;
  ParseAudit audit;
  const auto t = read_lumos_csv(in, philly_spec(), opts, &audit);
  EXPECT_EQ(t.size(), 2u);
  ASSERT_EQ(audit.skipped_lines.size(), 1u);
  EXPECT_EQ(audit.skipped_lines[0], 3u);  // header is line 1
}

TEST(LumosCsv, StrictModeThrowsWithContext) {
  const std::string csv =
      "id,user,submit,wait,run,requested_time,nodes,cores,kind,status,vc\n"
      "1,2,0,5,100,200,1,4,cpu,not-a-status,-1\n";
  std::istringstream in(csv);
  ParseOptions opts;
  opts.origin = "philly.csv";
  try {
    (void)read_lumos_csv(in, philly_spec(), opts);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("philly.csv:2"), std::string::npos);
  }
}

TEST(DlCsv, MissingHeaderIsNeverBudgeted) {
  // The bad-row budget forgives malformed *rows*; a missing required
  // column is a file-level defect and must throw regardless.
  std::istringstream in("job_id,user\n1,2\n");
  ParseOptions opts;
  opts.bad_row_budget = 100;
  EXPECT_THROW((void)read_dl_csv(in, philly_spec(), opts), ParseError);
}

// ---- malformed-row fuzz corpus (crash-consistent serve mode) -------------
//
// A live feed hands the parser arbitrary bytes; every row here has crashed
// or could crash a naive parser (UB float->int casts, non-finite doubles
// poisoning sketches, unbounded field counts). The contract: definite
// malformation throws typed ParseError (never crashes, never UB), and the
// lenient budget in read_swf absorbs it without losing neighboring rows.

namespace {

const char* kMalformedSwfRows[] = {
    "",                                         // blank after trim? (guard)
    "1 2 3",                                    // far too few fields
    "1 0 10 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1",  // 17 fields
    "a b c d e f g h i j k l m n o p q r",     // 18 non-numeric fields
    "nan 0 10 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1",   // nan id
    "1 inf 10 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1",   // inf submit
    "1 0 -inf 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1",   // -inf wait
    "1 0 10 nan 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1",     // nan runtime
    "1 0 10 1e400 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1",   // overflow
    "1 0 10 100 4 -1 -1 4 200 -1 \x01\x02 3 -1 -1 -1 -1 -1 -1",  // binary
    "1,0,10,100,4,-1,-1,4,200,-1,1,3,-1,-1,-1,-1,-1,-1",     // CSV dialect
};

}  // namespace

TEST(SwfFuzz, MalformedRowsThrowTypedParseError) {
  for (const char* raw : kMalformedSwfRows) {
    const auto trimmed = util::trim(raw);
    if (trimmed.empty()) continue;  // read_swf filters blanks before parse
    EXPECT_THROW((void)parse_swf_row(trimmed, ResourceKind::Cpu, {}, 1),
                 ParseError)
        << "row accepted: " << raw;
  }
}

TEST(SwfFuzz, LenientReaderSurvivesTheWholeCorpusInOneFile) {
  // Interleave every malformed row with valid rows: the budget must skip
  // exactly the bad ones and keep every good one, with audit line numbers
  // pointing at the skips.
  std::ostringstream file;
  file << "; fuzz corpus\n";
  std::size_t valid = 0;
  std::size_t malformed = 0;
  for (const char* raw : kMalformedSwfRows) {
    if (!util::trim(raw).empty()) ++malformed;
    file << raw << "\n";
    ++valid;
    file << valid << " " << valid * 10
         << " 5 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1\n";
  }
  // An overlong line (10 KiB of digits in one field) must not wedge it —
  // the id overflows double parsing, so the row is budgeted, not crashed.
  file << std::string(10000, '9')
       << " 0 5 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1\n";
  std::istringstream in(file.str());
  ParseOptions opts;
  opts.bad_row_budget = 1000;  // the live-feed default
  ParseAudit audit;
  const auto t = read_swf(in, theta_spec(), opts, &audit);
  EXPECT_EQ(t.size(), valid);
  EXPECT_EQ(audit.skipped_lines.size(), malformed + 1);
  EXPECT_FALSE(audit.clean());
}

TEST(SwfFuzz, StrictModeStopsAtTheFirstMalformedRow) {
  std::istringstream in(
      "1 0 5 100 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1\n"
      "not a row\n");
  EXPECT_THROW((void)read_swf(in, theta_spec()), ParseError);
}

TEST(SwfFuzz, OutOfRangeValuesClampInsteadOfUndefinedBehavior) {
  // Values that fit a double but not the integer field: the conversion
  // must clamp (saturate), never hit UB via a direct cast.
  const auto row = parse_swf_row(
      "1e300 0 5 100 4294967296 -1 -1 1 200 -1 1 99999999999 -1 -1 -1 -1 "
      "-1 -1",
      ResourceKind::Cpu, {}, 1);
  EXPECT_EQ(row.job.id, UINT64_MAX);
  EXPECT_EQ(row.job.cores, UINT32_MAX);
  EXPECT_EQ(row.job.user, UINT32_MAX);
  EXPECT_FALSE(row.unknown_runtime);
}

TEST(SwfFuzz, OutOfRangeStatusCodeMapsToFailed) {
  const auto row = parse_swf_row(
      "1 0 5 100 4 -1 -1 4 200 -1 7 3 -1 -1 -1 -1 -1 -1",
      ResourceKind::Cpu, {}, 1);
  EXPECT_EQ(row.job.status, JobStatus::Failed);
}

TEST(SwfFuzz, NegativeRuntimeIsUnknownNotMalformed) {
  const auto row = parse_swf_row(
      "1 0 5 -1 4 -1 -1 4 200 -1 1 3 -1 -1 -1 -1 -1 -1",
      ResourceKind::Cpu, {}, 1);
  EXPECT_TRUE(row.unknown_runtime);
}

}  // namespace
}  // namespace lumos::trace
