// Tests for the later subsystems: the Lublin-Feitelson baseline generator,
// node-level GPU packing/fragmentation, and the fault-aware study.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fault_aware_study.hpp"
#include "sim/node_cluster.hpp"
#include "stats/descriptive.hpp"
#include "synth/generator.hpp"
#include "synth/lublin.hpp"
#include "trace/validate.hpp"
#include "util/error.hpp"

namespace lumos {
namespace {

// ------------------------------------------------------------- Lublin ----

synth::LublinOptions lublin_options(double days = 2.0) {
  synth::LublinOptions options;
  options.spec = trace::theta_spec();
  options.duration_days = days;
  return options;
}

TEST(Lublin, GeneratesValidSortedTrace) {
  const auto t = generate_lublin(lublin_options());
  EXPECT_GT(t.size(), 500u);
  EXPECT_TRUE(t.is_sorted_by_submit());
  EXPECT_TRUE(trace::validate(t).consistent());
}

TEST(Lublin, Deterministic) {
  const auto a = generate_lublin(lublin_options());
  const auto b = generate_lublin(lublin_options());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a[10].submit_time, b[10].submit_time);
  EXPECT_DOUBLE_EQ(a[10].run_time, b[10].run_time);
}

TEST(Lublin, SizesWithinCapacityWithSerialShare) {
  const auto t = generate_lublin(lublin_options());
  std::size_t serial = 0;
  for (const auto& j : t.jobs()) {
    EXPECT_GE(j.cores, 1u);
    EXPECT_LE(j.cores, t.spec().primary_capacity());
    serial += j.cores == 1;
  }
  // The published serial probability is ~0.24 (the model samples 2^u for
  // continuous u, so parallel sizes are near, not exactly, powers of two).
  const double frac = static_cast<double>(serial) / t.size();
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.45);
}

TEST(Lublin, NoFailureStatesAndPaddedWalltime) {
  const auto t = generate_lublin(lublin_options());
  for (const auto& j : t.jobs()) {
    EXPECT_EQ(j.status, trace::JobStatus::Passed);
    EXPECT_GE(j.requested_time, j.run_time);
  }
}

TEST(Lublin, MissesDlShapes) {
  // The ablation claim: against the calibrated Helios generator, the
  // classic model has neither 1-GPU dominance nor burst arrivals — the
  // staleness the paper's cross-system analysis argues.
  synth::LublinOptions options;
  options.spec = trace::helios_spec();
  options.duration_days = 1.0;
  const auto lublin = generate_lublin(options);
  synth::GeneratorOptions gen;
  gen.duration_days = 1.0;
  const auto helios = synth::generate_system("Helios", gen);

  std::size_t lublin_single = 0, helios_single = 0;
  for (const auto& j : lublin.jobs()) lublin_single += j.cores == 1;
  for (const auto& j : helios.jobs()) helios_single += j.cores == 1;
  EXPECT_LT(static_cast<double>(lublin_single) / lublin.size(), 0.5);
  EXPECT_GT(static_cast<double>(helios_single) / helios.size(), 0.6);

  // Burstiness: the share of gaps within 10 s.
  auto burst_share = [](const trace::Trace& t) {
    const auto gaps = t.interarrival_times();
    std::size_t n = 0;
    for (double g : gaps) n += g <= 10.0;
    return static_cast<double>(n) / std::max<std::size_t>(1, gaps.size());
  };
  EXPECT_LT(burst_share(lublin), 0.4);
  EXPECT_GT(burst_share(helios), 0.7);
}

// -------------------------------------------------------- NodeCluster ----

TEST(NodeCluster, SingleNodeJobsMustFitOneNode) {
  sim::NodeCluster c(2, 8);
  // 12 free GPUs split 8+4 cannot host a 6-GPU job after a 4-GPU job
  // lands... construct: place 4 GPUs (one node now has 4 free).
  auto a = c.place(4);
  ASSERT_EQ(a.size(), 1u);
  auto b = c.place(6);  // fits on the idle node
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].node, b[0].node);
  // Now 4+2 free across nodes: a 5-GPU job cannot be placed even though
  // 6 GPUs are free in total — fragmentation.
  EXPECT_EQ(c.free_gpus(), 6u);
  EXPECT_FALSE(c.can_place(5));
  EXPECT_EQ(c.stranded_for(5), 6u);
  // A 4-GPU job still fits.
  EXPECT_TRUE(c.can_place(4));
  EXPECT_EQ(c.stranded_for(4), 2u);
}

TEST(NodeCluster, GangPlacementNeedsWholeNodes) {
  sim::NodeCluster c(4, 8);
  auto small = c.place(1);  // dirties one node
  ASSERT_FALSE(small.empty());
  // 24 GPUs needed = 3 whole nodes; only 3 idle remain: fits exactly.
  EXPECT_TRUE(c.can_place(24));
  // 25 needs 3 whole + 1 GPU remainder; the dirty node has 7 free: fits.
  EXPECT_TRUE(c.can_place(25));
  // 31 needs 3 whole + 7 remainder: dirty node has exactly 7 free: fits.
  EXPECT_TRUE(c.can_place(31));
  // 32 needs 4 whole nodes: impossible now.
  EXPECT_FALSE(c.can_place(32));
  c.release(small);
  EXPECT_TRUE(c.can_place(32));
}

TEST(NodeCluster, PlaceAndReleaseRestoreState) {
  sim::NodeCluster c(3, 8, sim::PackingPolicy::FirstFit);
  const auto before = c.free_gpus();
  auto slices = c.place(19);  // 2 whole + 3 remainder
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(c.free_gpus(), before - 19);
  c.release(slices);
  EXPECT_EQ(c.free_gpus(), before);
}

TEST(NodeCluster, BestFitPrefersTightNode) {
  sim::NodeCluster c(2, 8, sim::PackingPolicy::BestFit);
  auto a = c.place(5);  // node X: 3 free
  ASSERT_FALSE(a.empty());
  auto b = c.place(2);  // best-fit -> the node with 3 free
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b[0].node, a[0].node);
}

TEST(NodeCluster, WorstFitSpreads) {
  sim::NodeCluster c(2, 8, sim::PackingPolicy::WorstFit);
  auto a = c.place(5);
  ASSERT_FALSE(a.empty());
  auto b = c.place(2);  // worst-fit -> the idle node
  ASSERT_FALSE(b.empty());
  EXPECT_NE(b[0].node, a[0].node);
}

TEST(NodeCluster, RejectsInvalid) {
  EXPECT_THROW(sim::NodeCluster(0, 8), InvalidArgument);
  sim::NodeCluster c(2, 8);
  EXPECT_FALSE(c.can_place(0));
  EXPECT_FALSE(c.can_place(17));
  EXPECT_TRUE(c.place(17).empty());
}

TEST(PackingSim, PooledMatchesUnconstrainedStarts) {
  synth::GeneratorOptions options;
  options.duration_days = 1.0;
  options.max_jobs = 2000;
  const auto trace = synth::generate_system("Helios", options);
  sim::PackingConfig pooled;
  pooled.pooled = true;
  const auto base = sim::simulate_packing(trace, pooled);
  EXPECT_EQ(base.jobs, trace.size());
  EXPECT_GE(base.utilization, 0.0);

  sim::PackingConfig packed;
  const auto frag = sim::simulate_packing(trace, packed);
  EXPECT_EQ(frag.jobs, trace.size());
  // Placement constraints can only delay starts.
  EXPECT_GE(frag.avg_wait + 1e-9, base.avg_wait);
}

TEST(PackingSim, RequiresSortedTrace) {
  trace::Trace t(trace::philly_spec());
  trace::Job a;
  a.submit_time = 10;
  trace::Job b;
  b.submit_time = 0;
  t.add(a);
  t.add(b);
  EXPECT_THROW((void)sim::simulate_packing(t, sim::PackingConfig{}),
               InvalidArgument);
}

// --------------------------------------------------------- FaultAware ----

TEST(FaultAware, ThresholdSweepIsMonotoneInAction) {
  synth::GeneratorOptions options;
  options.duration_days = 6.0;
  options.max_jobs = 6000;
  const auto trace = synth::generate_system("Philly", options);
  const auto result = core::run_fault_aware_study(trace);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_GT(result.total_doomed_core_hours, 0.0);
  EXPECT_LT(result.total_doomed_core_hours, result.total_core_hours);
  // Lower thresholds act on at least as many jobs and recover at least as
  // much waste.
  for (std::size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_GE(result.rows[i - 1].stopped_doomed +
                  result.rows[i - 1].stopped_passed,
              result.rows[i].stopped_doomed + result.rows[i].stopped_passed);
    EXPECT_GE(result.rows[i - 1].saved_core_hours + 1e-9,
              result.rows[i].saved_core_hours);
  }
  EXPECT_FALSE(render_fault_aware_study(result).empty());
}

TEST(FaultAware, RejectsTinyTrace) {
  trace::Trace t(trace::philly_spec());
  EXPECT_THROW(core::run_fault_aware_study(t), InvalidArgument);
}

}  // namespace
}  // namespace lumos
