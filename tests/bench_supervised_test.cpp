// End-to-end fault drill of `bench_runner --supervised` (registered as the
// plain ctest `bench_supervised_smoke`): one harness in a three-harness
// smoke fleet is armed to crash / hang / emit garbage via the hidden
// --inject-fault hook, and the run must still complete with the failure
// recorded (status, exit code or signal, stderr tail) while the healthy
// harnesses' metrics land. A second invocation must resume from the
// journal, re-running only the failed harness. Finally, a fault-free
// supervised run must produce per-harness domain metrics bit-identical
// to the in-process runner.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "supervise/process.hpp"

#ifndef LUMOS_BENCH_RUNNER
#error "build must define LUMOS_BENCH_RUNNER (see tests/CMakeLists.txt)"
#endif

namespace lumos::bench {
namespace {

namespace fs = std::filesystem;

// Small but representative fleet: a table harness, a simulator-backed
// figure, and a classifier figure. Smoke mode caps each at ~seconds.
const char* const kFleet = "table1_traces,fig4_waiting,fig6_status";
const std::vector<std::string> kFleetNames = {"table1_traces",
                                              "fig4_waiting", "fig6_status"};

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("lumos_bench_supervised_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string out() const { return (path / "BENCH_results.json").string(); }
  std::string journal() const {
    return (path / "BENCH_journal.jsonl").string();
  }
};

supervise::ChildResult run_runner(std::vector<std::string> args,
                                  double deadline_seconds = 600.0) {
  supervise::ChildSpec spec;
  spec.argv = {LUMOS_BENCH_RUNNER};
  spec.argv.insert(spec.argv.end(), args.begin(), args.end());
  spec.deadline_seconds = deadline_seconds;
  spec.grace_seconds = 5.0;
  return supervise::run_child(spec);
}

obs::Json load_json(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return obs::Json::parse(buf.str());
}

const obs::Json& harness_entry(const obs::Json& results,
                               const std::string& name) {
  const obs::Json* harnesses = results.find("harnesses");
  EXPECT_NE(harnesses, nullptr);
  const obs::Json* entry = harnesses->find(name);
  EXPECT_NE(entry, nullptr) << "no entry for " << name;
  static const obs::Json empty = obs::Json::object();
  return entry ? *entry : empty;
}

std::string status_of(const obs::Json& results, const std::string& name) {
  const obs::Json* status = harness_entry(results, name).find("status");
  return status ? status->as_string() : "<missing>";
}

TEST(BenchSupervised, CrashDrillRecordsFailureAndResumeRerunsOnlyIt) {
  TempDir dir;
  // Round 1: fig4_waiting crashes (SIGABRT) on every attempt.
  const auto first = run_runner(
      {"--supervised", "--smoke", "--only", kFleet, "--attempts", "1",
       "--out", dir.out(), "--inject-fault", "fig4_waiting:crash"});
  EXPECT_EQ(first.exit_code, 1) << first.stderr_tail;

  const obs::Json round1 = load_json(dir.out());
  EXPECT_EQ(status_of(round1, "fig4_waiting"), "crashed:SIGABRT");
  const obs::Json& crashed = harness_entry(round1, "fig4_waiting");
  ASSERT_NE(crashed.find("signal"), nullptr);
  EXPECT_EQ(crashed.find("signal")->as_int(), SIGABRT);
  // The healthy harnesses' metrics still landed.
  for (const std::string name : {"table1_traces", "fig6_status"}) {
    EXPECT_EQ(status_of(round1, name), "ok");
    const obs::Json* metrics = harness_entry(round1, name).find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_FALSE(metrics->entries().empty());
  }
  ASSERT_TRUE(fs::exists(dir.journal()));

  // Round 2, fault removed: resumes from the journal, re-running only
  // the crashed harness; the completed ones are reused as "skipped".
  const auto second =
      run_runner({"--supervised", "--smoke", "--only", kFleet, "--attempts",
                  "1", "--out", dir.out()});
  EXPECT_EQ(second.exit_code, 0) << second.stderr_tail;
  EXPECT_NE(second.stdout_text.find("resuming from"), std::string::npos);
  EXPECT_NE(second.stdout_text.find("skipped (journal)"), std::string::npos);

  const obs::Json round2 = load_json(dir.out());
  EXPECT_EQ(status_of(round2, "fig4_waiting"), "ok");
  for (const std::string name : {"table1_traces", "fig6_status"}) {
    EXPECT_EQ(status_of(round2, name), "skipped");
    // Skipped entries carry the journalled metrics verbatim.
    const obs::Json* before = harness_entry(round1, name).find("metrics");
    const obs::Json* after = harness_entry(round2, name).find("metrics");
    ASSERT_NE(before, nullptr);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(*before, *after) << name << " metrics changed across resume";
  }
}

TEST(BenchSupervised, HangDrillTimesOutWithoutStallingTheFleet) {
  TempDir dir;
  const auto result = run_runner(
      {"--supervised", "--smoke", "--only", kFleet, "--attempts", "1",
       "--timeout", "1", "--grace", "0.5", "--out", dir.out(),
       "--inject-fault", "fig6_status:hang"});
  EXPECT_EQ(result.exit_code, 1) << result.stderr_tail;
  const obs::Json results = load_json(dir.out());
  EXPECT_EQ(status_of(results, "fig6_status"), "timeout");
  EXPECT_EQ(status_of(results, "table1_traces"), "ok");
  EXPECT_EQ(status_of(results, "fig4_waiting"), "ok");
}

TEST(BenchSupervised, GarbageStdoutClassifiesAsFailedNotOk) {
  TempDir dir;
  const auto result = run_runner(
      {"--supervised", "--smoke", "--only", kFleet, "--attempts", "1",
       "--out", dir.out(), "--inject-fault", "table1_traces:garbage"});
  EXPECT_EQ(result.exit_code, 1) << result.stderr_tail;
  const obs::Json results = load_json(dir.out());
  // The child exited 0 but printed a torn document: validation demotes it.
  EXPECT_EQ(status_of(results, "table1_traces"), "failed");
  const obs::Json* detail =
      harness_entry(results, "table1_traces").find("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_NE(detail->as_string().find("unparsable"), std::string::npos);
  EXPECT_EQ(status_of(results, "fig4_waiting"), "ok");
  EXPECT_EQ(status_of(results, "fig6_status"), "ok");
}

TEST(BenchSupervised, FaultFreeRunMatchesInProcessMetricsBitForBit) {
  TempDir dir;
  const std::string in_process_out = (dir.path / "inproc.json").string();
  const auto in_process = run_runner(
      {"--smoke", "--only", kFleet, "--out", in_process_out});
  ASSERT_EQ(in_process.exit_code, 0) << in_process.stderr_tail;
  const auto supervised = run_runner(
      {"--supervised", "--fresh", "--smoke", "--only", kFleet, "--out",
       dir.out()});
  ASSERT_EQ(supervised.exit_code, 0) << supervised.stderr_tail;

  const obs::Json a = load_json(in_process_out);
  const obs::Json b = load_json(dir.out());
  for (const auto& name : kFleetNames) {
    EXPECT_EQ(status_of(b, name), "ok");
    const obs::Json* inproc = harness_entry(a, name).find("metrics");
    const obs::Json* sup = harness_entry(b, name).find("metrics");
    ASSERT_NE(inproc, nullptr);
    ASSERT_NE(sup, nullptr);
    EXPECT_EQ(*inproc, *sup)
        << name << ": supervised metrics diverge from in-process";
  }
}

}  // namespace
}  // namespace lumos::bench
