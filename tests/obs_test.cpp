// Tests for lumos::obs: instrument semantics, registry identity and
// reset, concurrent increments (run under the tsan preset), and the JSON
// model — golden strings, round-trips, parse errors, snapshot export.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lumos::obs {
namespace {

// ---------------------------------------------------------- instruments --

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.add(0);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndHighWaterMark) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.set(1.0);  // plain set may lower
  EXPECT_EQ(g.value(), 1.0);
  g.set_max(4.0);
  g.set_max(2.0);  // below the mark: no effect
  EXPECT_EQ(g.value(), 4.0);
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.observe(0.5);
  h.observe(2.0);
  h.observe(0.125);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.625);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(Histogram, LogScaleBucketing) {
  // Bucket i spans [kBase*2^i, kBase*2^(i+1)).
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), Histogram::kBase);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(10), Histogram::kBase * 1024.0);
  // Exact lower bounds land in their own bucket; the scale is monotone.
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_bound(i)), i);
    EXPECT_LT(Histogram::bucket_bound(i - 1), Histogram::bucket_bound(i));
  }
  // Underflow folds into bucket 0, overflow into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e-12), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e18), Histogram::kBuckets - 1);

  Histogram h;
  h.observe(1e-3);  // 2^10 us => bucket 10 boundary
  EXPECT_EQ(h.bucket(Histogram::bucket_index(1e-3)), 1u);
}

// ------------------------------------------------------------- registry --

TEST(Registry, NamedLookupIsStableIdentity) {
  Registry reg;
  Counter& a = reg.counter("events");
  Counter& b = reg.counter("events");
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("other");
  EXPECT_NE(&a, &other);
  // Kinds are separate namespaces: a gauge "events" is a new instrument.
  Gauge& g = reg.gauge("events");
  g.set(1.0);
  EXPECT_EQ(a.value(), 0u);
}

TEST(Registry, SnapshotIsNameSortedAndSkipsNothing) {
  Registry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("depth").set(7.0);
  reg.histogram("t").observe(0.25);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 0.25);
  // Only non-empty buckets are sampled.
  ASSERT_EQ(snap.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets[0].second, 1u);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("events");
  c.add(5);
  reg.histogram("t").observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);  // name survives reset
  EXPECT_EQ(snap.counters[0].value, 0u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(Registry, ClearRemovesInstrumentsEntirely) {
  // reset() keeps zero-valued ghosts in snapshots (the bug behind the
  // stale `sim.events: 0` sections in BENCH_results.json); clear() is the
  // section boundary that actually empties the registry.
  Registry reg;
  reg.counter("events").add(5);
  reg.gauge("depth").set(2.0);
  reg.histogram("t").observe(1.0);
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
  // Names are re-creatable afterwards, starting from scratch.
  reg.counter("events").add(1);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(Registry, MergeAddsCountersOverwritesGaugesAccumulatesHistograms) {
  Registry a;
  a.counter("events").add(10);
  a.gauge("speed").set(1.0);
  a.histogram("t").observe(0.5);
  a.histogram("t").observe(4.0);

  Registry b;
  b.counter("events").add(32);
  b.counter("only_b").add(1);
  b.gauge("speed").set(9.0);
  b.histogram("t").observe(2.0);

  Registry merged;
  merged.merge(a.snapshot());
  merged.merge(b.snapshot());
  const Snapshot snap = merged.snapshot();

  ASSERT_EQ(snap.counters.size(), 2u);  // name-sorted: events, only_b
  EXPECT_EQ(snap.counters[0].value, 42u);
  EXPECT_EQ(snap.counters[1].value, 1u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 9.0);  // last merge wins
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 3u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 6.5);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 0.5);  // seeded, not clamped to 0
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 4.0);
}

TEST(Registry, MergeIntoEmptyReproducesSnapshot) {
  Registry source;
  source.counter("events").add(7);
  source.gauge("speed").set(3.25);
  for (double v : {1e-6, 0.125, 1.0, 77.0}) source.histogram("t").observe(v);
  const Snapshot original = source.snapshot();

  Registry copy;
  copy.merge(original);
  const Snapshot replayed = copy.snapshot();
  EXPECT_EQ(replayed.counters, original.counters);
  EXPECT_EQ(replayed.gauges, original.gauges);
  EXPECT_EQ(replayed.histograms, original.histograms);
}

TEST(ScopedTimer, ObservesOnDestructionUnlessCancelled) {
  Histogram h;
  {
    ScopedTimer t(h);
    EXPECT_GE(t.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedTimer t(h);
    t.cancel();
  }
  EXPECT_EQ(h.count(), 1u);
}

// Concurrent increments from the pool: totals must be exact (the tsan
// preset additionally proves the registry lookups race-free).
TEST(Registry, ConcurrentIncrementsAreExact) {
  Registry reg;
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  {
    util::ThreadPool pool(4);
    pool.parallel_for(0, kTasks, [&](std::size_t) {
      // Lookup inside the task: exercises find-or-create under contention.
      Counter& c = reg.counter("shared");
      for (std::size_t i = 0; i < kPerTask; ++i) c.add();
      reg.histogram("obs").observe(0.001);
      reg.gauge("mark").set_max(1.0);
    });
  }
  EXPECT_EQ(reg.counter("shared").value(), kTasks * kPerTask);
  EXPECT_EQ(reg.histogram("obs").count(), kTasks);
  EXPECT_EQ(reg.gauge("mark").value(), 1.0);
}

// ----------------------------------------------------------------- json --

TEST(Json, GoldenCompactAndPretty) {
  Json doc = Json::object();
  doc["b"] = 2;
  doc["a"] = Json::array();
  doc["a"].push_back(1.5);
  doc["a"].push_back("x");
  doc["a"].push_back(true);
  doc["n"] = Json();
  // Keys sort; doubles use shortest round-trip with a ".0"-style marker.
  EXPECT_EQ(doc.dump(-1), R"({"a":[1.5,"x",true],"b":2,"n":null})");
  EXPECT_EQ(Json(3.0).dump(-1), "3.0");
  EXPECT_EQ(Json(0.1).dump(-1), "0.1");
  EXPECT_EQ(Json::object().dump(-1), "{}");
  Json pretty = Json::object();
  pretty["k"] = 1;
  EXPECT_EQ(pretty.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\n\t\x01").dump(-1),
            R"("a\"b\\c\n\t\u0001")");
}

TEST(Json, RoundTripsItsOwnOutput) {
  Json doc = Json::object();
  doc["metrics"] = Json::object();
  doc["metrics"]["wait"] = 12.25;
  doc["metrics"]["count"] = std::int64_t{1} << 53;
  doc["list"] = Json::array();
  doc["list"].push_back(Json::object());
  doc["list"].push_back(-0.0078125);
  doc["ok"] = false;
  for (int indent : {-1, 0, 2, 4}) {
    EXPECT_EQ(Json::parse(doc.dump(indent)), doc) << "indent=" << indent;
  }
}

TEST(Json, ParsesEscapesAndNumbers) {
  const Json v = Json::parse(R"({"s":"a\u0041\n","x":-1.25e2,"i":-7})");
  EXPECT_EQ(v.find("s")->as_string(), "aA\n");
  EXPECT_DOUBLE_EQ(v.find("x")->as_double(), -125.0);
  EXPECT_EQ(v.find("i")->as_int(), -7);       // no decimal point => Int
  EXPECT_EQ(v.find("x")->kind(), Json::Kind::Double);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse("'single'"), InvalidArgument);
  EXPECT_THROW(Json::parse("nul"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"\\ud800\""), InvalidArgument);  // lone surrogate
}

TEST(Json, CheckedAccessorsThrowOnKindMismatch) {
  const Json v = 1;
  EXPECT_THROW((void)v.as_string(), InvalidArgument);
  EXPECT_THROW((void)v.items(), InvalidArgument);
  EXPECT_EQ(v.as_double(), 1.0);  // Int widens to double
  EXPECT_EQ(Json().find("k"), nullptr);
}

// ------------------------------------------------------ snapshot export --

TEST(SnapshotJson, FollowsDocumentedSchema) {
  Registry reg;
  reg.counter("sim.events").add(10);
  reg.gauge("threads").set(4.0);
  reg.histogram("t").observe(0.5);
  reg.histogram("t").observe(1.5);
  const Json j = to_json(reg.snapshot());
  EXPECT_EQ(j.find("counters")->find("sim.events")->as_int(), 10);
  EXPECT_EQ(j.find("gauges")->find("threads")->as_double(), 4.0);
  const Json* hist = j.find("histograms")->find("t");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_int(), 2);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_double(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("mean")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hist->find("min")->as_double(), 0.5);
  EXPECT_DOUBLE_EQ(hist->find("max")->as_double(), 1.5);
  // buckets: [{le, n}] over non-empty buckets only.
  const auto& buckets = hist->find("buckets")->items();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].find("n")->as_int(), 1);
}

TEST(ReportJson, DomainMetricsSeparateFromObservability) {
  Report report;
  report.harness = "fig4_waiting";
  report.figure = "Figure 4";
  report.wall_seconds = 0.25;
  report.set("median_wait_s.Mira", 100.0);
  const Json j = report.to_json();
  EXPECT_EQ(j.find("figure")->as_string(), "Figure 4");
  EXPECT_DOUBLE_EQ(j.find("wall_seconds")->as_double(), 0.25);
  EXPECT_DOUBLE_EQ(
      j.find("metrics")->find("median_wait_s.Mira")->as_double(), 100.0);
  // Empty snapshot => no counters/gauges/histograms sections.
  EXPECT_EQ(j.find("counters"), nullptr);
  // Same inputs, same document: what bench_runner --verify leans on.
  EXPECT_EQ(j.dump(), report.to_json().dump());
}

TEST(ReportJson, FromJsonRoundTripsDomainMetrics) {
  Report report;
  report.harness = "fig4_waiting";
  report.figure = "Figure 4";
  report.wall_seconds = 0.25;
  report.set("median_wait_s.Mira", 100.0);
  report.set("median_wait_s.Intrepid", 0.1234567890123456789);
  const Report restored = Report::from_json("fig4_waiting", report.to_json());
  EXPECT_EQ(restored.harness, "fig4_waiting");
  EXPECT_EQ(restored.figure, "Figure 4");
  EXPECT_DOUBLE_EQ(restored.wall_seconds, 0.25);
  // Bit-exact metric recovery is what the supervised runner's
  // in-process-vs-child equivalence guarantee rests on.
  EXPECT_EQ(restored.metrics, report.metrics);
}

// ------------------------------------------------------- atomic writing --

TEST(AtomicJson, WritesParsableFileAndCleansUpTemp) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("lumos_obs_atomic_" +
                     std::to_string(static_cast<long>(::getpid())) + ".json");
  std::filesystem::remove(path);
  Json doc = Json::object();
  doc["key"] = 7;
  write_json_atomic(doc, path.string());
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(Json::parse(buf.str()).find("key")->as_int(), 7);
  // The same-directory temp file was renamed away, not left behind.
  for (const auto& entry : std::filesystem::directory_iterator(
           path.parent_path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_NE(name.rfind(path.filename().string() + ".tmp", 0), 0u)
        << "stale temp file: " << name;
  }
  std::filesystem::remove(path);
}

TEST(AtomicJson, OverwritesExistingFileAtomically) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("lumos_obs_atomic_over_" +
                     std::to_string(static_cast<long>(::getpid())) + ".json");
  Json first = Json::object();
  first["version"] = 1;
  write_json_atomic(first, path.string());
  Json second = Json::object();
  second["version"] = 2;
  write_json_atomic(second, path.string());
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(Json::parse(buf.str()).find("version")->as_int(), 2);
  std::filesystem::remove(path);
}

TEST(AtomicJson, UnwritableDirectoryThrowsWithoutLeavingTemp) {
  EXPECT_THROW(
      write_json_atomic(Json::object(), "/nonexistent/dir/out.json"),
      InvalidArgument);
}

TEST(AtomicJson, DashWritesToStdout) {
  // "-" must keep meaning stdout in the atomic variant too (the bench
  // runner forwards --out verbatim). Nothing to assert beyond "no throw
  // and no stray file": the document lands on the test's stdout.
  testing::internal::CaptureStdout();
  Json doc = Json::object();
  doc["k"] = 1;
  write_json_atomic(doc, "-");
  const std::string captured = testing::internal::GetCapturedStdout();
  EXPECT_EQ(Json::parse(captured).find("k")->as_int(), 1);
}

}  // namespace
}  // namespace lumos::obs
