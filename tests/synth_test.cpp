// Tests for the calibrated workload generators: determinism, physical
// consistency, and the paper statistics each calibration targets.
#include <gtest/gtest.h>

#include <algorithm>

#include "stats/descriptive.hpp"
#include "synth/arrival.hpp"
#include "synth/calibration.hpp"
#include "synth/failure_model.hpp"
#include "synth/generator.hpp"
#include "synth/user_model.hpp"
#include "synth/wait_model.hpp"
#include "trace/validate.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace lumos::synth {
namespace {

trace::Trace quick(const char* system, double days = 5.0,
                   std::uint64_t seed = 42) {
  GeneratorOptions options;
  options.seed = seed;
  options.duration_days = days;
  return generate_system(system, options);
}

TEST(Calibration, AllFiveExistAndAreSane) {
  const auto cals = all_calibrations();
  ASSERT_EQ(cals.size(), 5u);
  for (const auto& c : cals) {
    EXPECT_FALSE(c.sizes.empty()) << c.spec.name;
    double weight = 0.0;
    for (const auto& s : c.sizes) {
      EXPECT_GT(s.cores, 0u);
      EXPECT_LE(s.cores, c.spec.primary_capacity()) << c.spec.name;
      weight += s.weight;
    }
    EXPECT_GT(weight, 0.0);
    EXPECT_GT(c.num_users, 0);
    EXPECT_GT(c.duration_days, 0.0);
    // Hourly profile is mean-normalised.
    double sum = 0.0;
    for (double h : c.hourly) sum += h;
    EXPECT_NEAR(sum / 24.0, 1.0, 1e-9) << c.spec.name;
  }
}

TEST(Calibration, LookupByName) {
  EXPECT_EQ(calibration_for("mira").spec.name, "Mira");
  EXPECT_EQ(calibration_for("BW").spec.name, "BlueWaters");
  EXPECT_THROW(calibration_for("summit"), InvalidArgument);
}

TEST(Calibration, DlSystemsLackWalltime) {
  EXPECT_FALSE(philly_calibration().emit_walltime);
  EXPECT_FALSE(helios_calibration().emit_walltime);
  EXPECT_TRUE(mira_calibration().emit_walltime);
}

TEST(Generator, DeterministicForSeed) {
  const auto a = quick("Mira", 2.0, 7);
  const auto b = quick("Mira", 2.0, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_DOUBLE_EQ(a[i].run_time, b[i].run_time);
    EXPECT_EQ(a[i].cores, b[i].cores);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].status, b[i].status);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = quick("Mira", 2.0, 1);
  const auto b = quick("Mira", 2.0, 2);
  EXPECT_NE(a.size(), b.size());
}

TEST(Generator, OutputIsSortedAndValid) {
  for (const char* sys : {"BlueWaters", "Mira", "Theta", "Philly"}) {
    const auto t = quick(sys, 3.0);
    EXPECT_TRUE(t.is_sorted_by_submit()) << sys;
    const auto report = trace::validate(t);
    EXPECT_TRUE(report.consistent()) << sys << "\n" << report.to_string();
  }
}

TEST(Generator, MaxJobsCap) {
  GeneratorOptions options;
  options.duration_days = 30.0;
  options.max_jobs = 100;
  const auto t = generate_system("Helios", options);
  EXPECT_EQ(t.size(), 100u);
}

TEST(Generator, HpcJobsCarryWalltimeAtLeastRuntime) {
  const auto t = quick("Theta", 4.0);
  for (const auto& j : t.jobs()) {
    ASSERT_TRUE(j.has_requested_time());
    EXPECT_GE(j.requested_time * 1.0001, j.run_time);
  }
}

TEST(Generator, DlJobsHaveNoWalltimeButHaveVcOnPhilly) {
  const auto t = quick("Philly", 2.0);
  bool any_vc = false;
  for (const auto& j : t.jobs()) {
    EXPECT_FALSE(j.has_requested_time());
    EXPECT_EQ(j.kind, trace::ResourceKind::Gpu);
    any_vc |= j.virtual_cluster >= 0;
  }
  EXPECT_TRUE(any_vc);
}

TEST(Generator, RuntimeMediansMatchPaperOrdering) {
  const auto bw = stats::median(quick("BlueWaters", 4.0).run_times());
  const auto mira = stats::median(quick("Mira", 6.0).run_times());
  const auto philly = stats::median(quick("Philly", 3.0).run_times());
  const auto helios = stats::median(quick("Helios", 2.0).run_times());
  // Paper: BW/Mira ~1.5h >> Philly ~12 min >> Helios ~90 s.
  EXPECT_GT(bw, 2000.0);
  EXPECT_GT(mira, 2000.0);
  EXPECT_LT(philly, bw / 3.0);
  EXPECT_LT(helios, philly / 2.0);
  EXPECT_LT(helios, 400.0);
}

TEST(Generator, InterarrivalOrdering) {
  const auto mira = stats::median(quick("Mira", 6.0).interarrival_times());
  const auto philly = stats::median(quick("Philly", 3.0).interarrival_times());
  // Paper: HPC gaps ~10x DL gaps.
  EXPECT_GT(mira, 4.0 * philly);
  EXPECT_LT(philly, 15.0);
}

TEST(Generator, DlMostlySingleGpu) {
  const auto t = quick("Helios", 2.0);
  std::size_t single = 0;
  for (const auto& j : t.jobs()) single += j.cores == 1;
  const double frac = static_cast<double>(single) / t.size();
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.95);
}

TEST(Generator, MiraMostlyOverThousandCores) {
  const auto t = quick("Mira", 8.0);
  std::size_t big = 0;
  for (const auto& j : t.jobs()) big += j.cores > 1000;
  EXPECT_GT(static_cast<double>(big) / t.size(), 0.45);
}

TEST(Generator, StatusMixInPaperBands) {
  for (const char* sys : {"BlueWaters", "Mira", "Philly"}) {
    const auto t = quick(sys, 5.0);
    std::size_t passed = 0;
    for (const auto& j : t.jobs()) {
      passed += j.status == trace::JobStatus::Passed;
    }
    const double frac = static_cast<double>(passed) / t.size();
    EXPECT_GT(frac, 0.5) << sys;
    EXPECT_LT(frac, 0.85) << sys;
  }
}

TEST(Generator, FailedJobsAreShort) {
  const auto t = quick("BlueWaters", 5.0);
  std::vector<double> failed, passed;
  for (const auto& j : t.jobs()) {
    if (j.status == trace::JobStatus::Failed) failed.push_back(j.run_time);
    if (j.status == trace::JobStatus::Passed) passed.push_back(j.run_time);
  }
  ASSERT_GT(failed.size(), 10u);
  EXPECT_LT(stats::median(failed), stats::median(passed));
}

TEST(Generator, KilledJobsAreLong) {
  const auto t = quick("Mira", 8.0);
  std::vector<double> killed, passed;
  for (const auto& j : t.jobs()) {
    if (j.status == trace::JobStatus::Killed) killed.push_back(j.run_time);
    if (j.status == trace::JobStatus::Passed) passed.push_back(j.run_time);
  }
  ASSERT_GT(killed.size(), 10u);
  EXPECT_GT(stats::median(killed), stats::median(passed));
}

// ------------------------------------------------------------ submodels --

TEST(ArrivalProcess, StrictlyIncreasing) {
  const auto cal = philly_calibration();
  util::Rng rng(3);
  ArrivalProcess arrivals(cal, rng);
  double prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double t = arrivals.next();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(ArrivalProcess, DiurnalSystemsPeakInBusinessHours) {
  const auto cal = helios_calibration();
  util::Rng rng(5);
  ArrivalProcess arrivals(cal, rng);
  std::array<int, 24> hourly{};
  for (int i = 0; i < 60000; ++i) {
    const double t = arrivals.next();
    hourly[static_cast<std::size_t>(util::hour_of_day(
        t, cal.spec.epoch_unix, cal.spec.utc_offset_hours))]++;
  }
  int day = 0, night = 0;
  for (int h = 9; h <= 16; ++h) day += hourly[h];
  for (int h = 0; h <= 5; ++h) night += hourly[h];
  EXPECT_GT(day, 2 * night);
}

TEST(UserPopulation, TemplatesWithinBounds) {
  const auto cal = mira_calibration();
  util::Rng rng(9);
  UserPopulation pop(cal, rng);
  ASSERT_EQ(pop.size(), static_cast<std::size_t>(cal.num_users));
  for (std::size_t u = 0; u < pop.size(); ++u) {
    const auto& profile = pop.user(static_cast<std::uint32_t>(u));
    EXPECT_GE(static_cast<int>(profile.templates.size()), cal.templates_min);
    EXPECT_LE(static_cast<int>(profile.templates.size()), cal.templates_max);
    for (const auto& t : profile.templates) {
      EXPECT_GE(t.run_median_s, cal.run_min_s);
      EXPECT_LE(t.run_median_s, cal.run_max_s);
    }
  }
}

TEST(UserPopulation, LoadShrinksTemplateSizes) {
  const auto cal = philly_calibration();
  util::Rng rng(11);
  UserPopulation pop(cal, rng);
  const auto& user = pop.user(0);
  double idle_mean = 0.0, busy_mean = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    idle_mean += pop.sample_template(user, 0.0, rng).cores;
    busy_mean += pop.sample_template(user, 1.0, rng).cores;
  }
  EXPECT_LT(busy_mean, idle_mean);
}

TEST(FailureModel, KillProbabilityMonotoneInRuntime) {
  const auto cal = mira_calibration();
  FailureModel model(cal);
  const double short_p = model.kill_probability(600.0, 1024, 0.0);
  const double median_p = model.kill_probability(7000.0, 1024, 0.0);
  const double long_p = model.kill_probability(3.0 * 86400.0, 1024, 0.0);
  EXPECT_LT(short_p, median_p);
  EXPECT_LT(median_p, long_p);
  EXPECT_GT(long_p, 0.9);  // Mira: ~99% of long jobs killed
}

TEST(FailureModel, DlSizeSlopeRaisesFailure) {
  const auto cal = philly_calibration();
  FailureModel model(cal);
  EXPECT_GT(model.fail_probability(64), model.fail_probability(1));
  EXPECT_GT(model.kill_probability(600.0, 64, 0.0),
            model.kill_probability(600.0, 1, 0.0));
}

TEST(WaitModel, MultiplierReflectsCalibration) {
  const auto cal = mira_calibration();
  WaitModel model(cal);
  // Middle-size jobs carry the largest size multiplier on Mira.
  const auto mid_cores =
      static_cast<std::uint32_t>(cal.spec.primary_capacity() * 0.2);
  const auto small_cores = static_cast<std::uint32_t>(16);
  EXPECT_GT(model.multiplier(mid_cores, 100.0, 0.0),
            model.multiplier(small_cores, 100.0, 0.0));
  // Longer jobs wait longer.
  EXPECT_GT(model.multiplier(16, 86400.0, 0.0),
            model.multiplier(16, 60.0, 0.0));
  // Load raises waits.
  EXPECT_GT(model.multiplier(16, 100.0, 1.0),
            model.multiplier(16, 100.0, 0.0));
}

}  // namespace
}  // namespace lumos::synth
