// Tests for the tooling layer: bootstrap CIs, trace transformations, the
// CSV figure exporter, and the lumos-lint domain-invariant checker.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/export.hpp"
#include "core/study.hpp"
#include "lint/lint.hpp"
#include "obs/registry.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "trace/transform.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos {
namespace {

// ------------------------------------------------------------ bootstrap --

TEST(Bootstrap, CiCoversTrueMedian) {
  util::Rng rng(9);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal(50.0, 5.0);
  const auto ci = stats::bootstrap_median_ci(xs, 400, 0.95, 7);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 50.0 + 2.0);
  EXPECT_GT(ci.hi, 50.0 - 2.0);
  EXPECT_LT(ci.hi - ci.lo, 4.0);  // a 400-sample median CI is tight
}

TEST(Bootstrap, MeanCiWiderForHeavierTails) {
  util::Rng rng(10);
  std::vector<double> normal(300), heavy(300);
  for (auto& x : normal) x = rng.normal(10.0, 1.0);
  for (auto& x : heavy) x = rng.lognormal(1.0, 1.5);
  const auto ci_n = stats::bootstrap_mean_ci(normal, 300);
  const auto ci_h = stats::bootstrap_mean_ci(heavy, 300);
  EXPECT_GT(ci_h.hi - ci_h.lo, ci_n.hi - ci_n.lo);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto a = stats::bootstrap_median_ci(xs, 100, 0.9, 55);
  const auto b = stats::bootstrap_median_ci(xs, 100, 0.9, 55);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, RejectsBadInput) {
  EXPECT_THROW((void)stats::bootstrap_median_ci({}, 100), InvalidArgument);
  EXPECT_THROW((void)stats::bootstrap_median_ci(std::vector<double>{1.0}, 2),
               InvalidArgument);
}

// ----------------------------------------------------------- transforms --

trace::Trace two_user_trace() {
  trace::Trace t(trace::theta_spec());
  for (int i = 0; i < 6; ++i) {
    trace::Job j;
    j.submit_time = i * 10.0;
    j.run_time = 100.0;
    j.cores = 64;
    j.user = 100 + (i % 2) * 50;  // users 100 and 150
    t.add(j);
  }
  t.sort_by_submit();
  return t;
}

TEST(Transform, MergeDisjointUsers) {
  const auto a = two_user_trace();
  const auto b = two_user_trace();
  const auto merged = trace::merge(a, b);
  EXPECT_EQ(merged.size(), 12u);
  EXPECT_EQ(merged.user_count(), 4u);  // users offset apart
  EXPECT_TRUE(merged.is_sorted_by_submit());
  const auto shared = trace::merge(a, b, /*share_users=*/true);
  EXPECT_EQ(shared.user_count(), 2u);
}

TEST(Transform, MergeRejectsDifferentSystems) {
  trace::Trace a(trace::theta_spec());
  trace::Trace b(trace::mira_spec());
  EXPECT_THROW(trace::merge(a, b), InvalidArgument);
}

TEST(Transform, AnonymizeDensifiesAndPreservesStructure) {
  const auto t = two_user_trace();
  const auto anon = trace::anonymize_users(t);
  EXPECT_EQ(anon.size(), t.size());
  EXPECT_EQ(anon.user_count(), 2u);
  for (const auto& j : anon.jobs()) EXPECT_LT(j.user, 2u);
  // Same-user jobs stay same-user.
  EXPECT_EQ(anon[0].user, anon[2].user);
  EXPECT_NE(anon[0].user, anon[1].user);
  // Geometry untouched.
  EXPECT_DOUBLE_EQ(anon[3].run_time, t[3].run_time);
}

TEST(Transform, ScaleSizesClampsToCapacity) {
  const auto t = two_user_trace();
  const auto bigger = trace::scale_sizes(t, 1e9);
  for (const auto& j : bigger.jobs()) {
    EXPECT_EQ(j.cores, t.spec().primary_capacity());
  }
  const auto smaller = trace::scale_sizes(t, 1e-9);
  for (const auto& j : smaller.jobs()) EXPECT_EQ(j.cores, 1u);
  EXPECT_THROW(trace::scale_sizes(t, 0.0), InvalidArgument);
}

TEST(Transform, DilateArrivalsScalesGaps) {
  const auto t = two_user_trace();
  const auto slow = trace::dilate_arrivals(t, 3.0);
  const auto gaps_before = t.interarrival_times();
  const auto gaps_after = slow.interarrival_times();
  ASSERT_EQ(gaps_before.size(), gaps_after.size());
  for (std::size_t i = 0; i < gaps_before.size(); ++i) {
    EXPECT_DOUBLE_EQ(gaps_after[i], 3.0 * gaps_before[i]);
  }
}

// --------------------------------------------------------------- export --

TEST(Export, WritesAllFigureFiles) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "lumos_export").string();
  std::filesystem::remove_all(dir);
  core::StudyOptions options;
  options.duration_days = 1.0;
  options.systems = {"Theta", "Philly"};
  const core::CrossSystemStudy study(options);
  study.export_csv(dir);
  for (const char* file :
       {"fig1a_runtime_cdf.csv", "fig1b_hourly.csv", "fig1c_cores_cdf.csv",
        "fig2_domination.csv", "fig3_utilization.csv", "fig4_wait_cdf.csv",
        "fig6_status.csv", "fig8_repetition.csv", "fig9_10_queue_mix.csv"}) {
    const auto path = std::filesystem::path(dir) / file;
    ASSERT_TRUE(std::filesystem::exists(path)) << file;
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("system"), std::string::npos) << file;
    std::string first;
    EXPECT_TRUE(static_cast<bool>(std::getline(in, first))) << file;
  }
  // Both systems appear in the runtime CDF.
  std::ifstream in(std::filesystem::path(dir) / "fig1a_runtime_cdf.csv");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("Theta"), std::string::npos);
  EXPECT_NE(all.find("Philly"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Export, HourlyHas24RowsPerSystem) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "lumos_export2").string();
  std::filesystem::remove_all(dir);
  core::StudyOptions options;
  options.duration_days = 1.0;
  options.systems = {"Helios"};
  const core::CrossSystemStudy study(options);
  analysis::export_hourly(dir, study.arrivals());
  std::ifstream in(std::filesystem::path(dir) / "fig1b_hourly.csv");
  std::string line;
  int rows = -1;  // header
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 24);
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- lumos-lint --

TEST(LumosLint, FlagsBannedRngWithExactLocation) {
  const auto diags = lint::lint_source("synth/sampler.cpp",
                                       "#include \"synth/sampler.hpp\"\n"
                                       "int draw() {\n"
                                       "  std::random_device entropy;\n"
                                       "  return rand() % 7;\n"
                                       "}\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "synth/sampler.cpp");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_EQ(diags[0].rule, "banned-rng");
  EXPECT_EQ(diags[1].line, 4);
  EXPECT_EQ(diags[1].rule, "banned-rng");
  // Exact, greppable diagnostic format.
  EXPECT_EQ(lint::format(diags[0]).rfind("synth/sampler.cpp:3: [banned-rng]",
                                         0),
            0u);
}

TEST(LumosLint, FlagsRawThreadsAsyncAndDetach) {
  const auto diags = lint::lint_source(
      "analysis/sweep.cpp",
      "void run() {\n"
      "  std::thread worker([] {});\n"
      "  worker.detach();\n"
      "  auto f = std::async([] { return 1; });\n"
      "}\n");
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].line, 3);
  EXPECT_EQ(diags[2].line, 4);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "raw-thread");
}

TEST(LumosLint, FlagsFloatOnlyInTimeAccountingLayers) {
  const std::string body = "double f(double t) { float dt = 0.5f; return t + dt; }\n";
  const auto in_sim = lint::lint_source("sim/clock.cpp", body);
  ASSERT_EQ(in_sim.size(), 1u);
  EXPECT_EQ(in_sim[0].rule, "float-time");
  EXPECT_EQ(in_sim[0].line, 1);
  // ml/ does reduced-precision math legitimately; the rule is scoped to
  // sim/, trace/, and core/.
  EXPECT_TRUE(lint::lint_source("ml/matrix.cpp", body).empty());
  EXPECT_FALSE(lint::lint_source("trace/swf.cpp", body).empty());
  EXPECT_FALSE(lint::lint_source("core/study.cpp", body).empty());
}

TEST(LumosLint, FlagsStdoutInLibraryCodeOnly) {
  const std::string body = "void p() { std::cout << 1; }\n";
  const auto diags = lint::lint_source("analysis/report.cpp", body);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "stdout-io");
  // The sanctioned sink and the non-library trees may print.
  EXPECT_TRUE(lint::lint_source("util/logging.cpp", body).empty());
  EXPECT_TRUE(lint::lint_source("tools/lumos_cli.cpp", body).empty());
  // Bench harnesses render into a caller-supplied stream (common.hpp's
  // harness_main owns the binding to stdout); direct use is a violation.
  const auto bench = lint::lint_source("bench/table1_traces.cpp", body);
  ASSERT_EQ(bench.size(), 1u);
  EXPECT_EQ(bench[0].rule, "stdout-io");
}

TEST(LumosLint, StdoutAllowlistNamesFilesNotDirectories) {
  const std::string body = "void p() { std::cerr << 1; }\n";
  // The sanctioned stream owners: obs/json.cpp ("-" output path) and the
  // two bench entry points.
  EXPECT_TRUE(lint::lint_source("obs/json.cpp", body).empty());
  EXPECT_TRUE(lint::lint_source("bench/bench_runner.cpp", body).empty());
  EXPECT_TRUE(lint::lint_source("bench/common.hpp",
                                "#pragma once\n"
                                "inline void p() { std::cout << 1; }\n")
                  .empty());
  // Siblings in the same directories stay checked.
  const auto obs = lint::lint_source("obs/registry.cpp", body);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].rule, "stdout-io");
}

TEST(LumosLint, BenchIsSubjectToRngAndThreadRules) {
  const auto rng = lint::lint_source("bench/micro_sim.cpp",
                                     "int jitter() { return rand(); }\n");
  ASSERT_EQ(rng.size(), 1u);
  EXPECT_EQ(rng[0].rule, "banned-rng");
  const auto thread = lint::lint_source(
      "bench/bench_runner.cpp", "void go() { std::thread t([] {}); }\n");
  ASSERT_EQ(thread.size(), 1u);
  EXPECT_EQ(thread[0].rule, "raw-thread");
}

TEST(LumosLint, LintTreePrefixSelectsRuleDomain) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "lumos_lint_prefix_test";
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "common.hpp");
    out << "#pragma once\ninline void p() { std::cout << 1; }\n";
  }
  {
    std::ofstream out(dir / "extra.cpp");
    out << "void q() { std::cout << 2; }\n";
  }
  // With the bench/ prefix the allowlist recognises common.hpp and the
  // sibling stays a violation, reported under the prefixed path.
  const auto diags = lint::lint_tree(dir, "bench/");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "bench/extra.cpp");
  EXPECT_EQ(diags[0].rule, "stdout-io");
  fs::remove_all(dir);
}

TEST(LumosLint, FlagsPriorityQueueInSimOutsideEventQueue) {
  const std::string body =
      "void f() { std::priority_queue<int> q; q.push(1); }\n";
  const auto in_sim = lint::lint_source("sim/scheduler.cpp", body);
  ASSERT_EQ(in_sim.size(), 1u);
  EXPECT_EQ(in_sim[0].rule, "sim-priority-queue");
  EXPECT_EQ(in_sim[0].line, 1);
  // The EventQueue heap backend is the one sanctioned use...
  EXPECT_TRUE(lint::lint_source("sim/event_queue.hpp",
                                "#pragma once\ninline void g() { "
                                "std::priority_queue<int> q; }\n")
                  .empty());
  // ...and the rule is scoped to sim/: other layers may order freely.
  EXPECT_TRUE(lint::lint_source("stats/topk.cpp", body).empty());
  EXPECT_TRUE(lint::lint_source("util/heap_util.cpp", body).empty());
  // Mentions in comments and strings never trip the token scan.
  EXPECT_TRUE(lint::lint_source("sim/notes.cpp",
                                "// std::priority_queue is banned here\n"
                                "const char* s = \"std::priority_queue\";\n")
                  .empty());
}

TEST(LumosLint, SanctionedImplementationsAreExempt) {
  EXPECT_TRUE(lint::lint_source("util/rng.cpp",
                                "unsigned seed() { std::random_device rd; "
                                "return rd(); }\n")
                  .empty());
  EXPECT_TRUE(lint::lint_source("util/thread_pool.cpp",
                                "void spawn() { std::thread t([] {}); "
                                "t.join(); }\n")
                  .empty());
}

TEST(LumosLint, PragmaOnceRequiredAfterLeadingComments) {
  // A guard-style header is flagged at the guard line...
  const auto guarded = lint::lint_source("sim/clock.hpp",
                                         "// Legacy header.\n"
                                         "#ifndef LUMOS_SIM_CLOCK_HPP\n"
                                         "#define LUMOS_SIM_CLOCK_HPP\n"
                                         "#endif\n");
  ASSERT_EQ(guarded.size(), 1u);
  EXPECT_EQ(guarded[0].rule, "pragma-once");
  EXPECT_EQ(guarded[0].line, 2);
  // ...while comments before #pragma once are fine, and .cpp files are
  // not checked for it.
  EXPECT_TRUE(lint::lint_source("sim/clock.hpp",
                                "// Doc comment.\n\n#pragma once\n")
                  .empty());
  EXPECT_TRUE(lint::lint_source("sim/clock.cpp", "int x = 1;\n").empty());
}

TEST(LumosLint, IncludeHygieneParentPathsAndDuplicates) {
  const auto diags = lint::lint_source("stats/ecdf.cpp",
                                       "#include \"../util/csv.hpp\"\n"
                                       "#include <vector>\n"
                                       "#include <vector>\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "include-hygiene");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("parent-relative"), std::string::npos);
  EXPECT_EQ(diags[1].line, 3);
  EXPECT_NE(diags[1].message.find("duplicate"), std::string::npos);
}

TEST(LumosLint, IgnoresCommentsAndStringLiterals) {
  // Every banned token appears — but only in comments or literals, so the
  // stripped scan must stay clean.
  EXPECT_TRUE(lint::lint_source(
                  "sim/notes.cpp",
                  "// std::cout << rand(); std::thread t; float bad;\n"
                  "/* std::random_device in a block comment */\n"
                  "const char* kDoc = \"call rand() and std::cout\";\n"
                  "const char* kRaw = R\"(std::thread w; w.detach();)\";\n")
                  .empty());
}

TEST(LumosLint, FlagsNakedCatchAll) {
  const auto diags = lint::lint_source(
      "trace/loader.cpp",
      "void load() {\n"
      "  try {\n"
      "    parse();\n"
      "  } catch (...) {\n"
      "    log_and_continue();\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "naked-catch-all");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(LumosLint, CatchAllThatRethrowsIsClean) {
  EXPECT_TRUE(lint::lint_source("trace/loader.cpp",
                                "void load() {\n"
                                "  try { parse(); } catch (...) {\n"
                                "    cleanup();\n"
                                "    throw;\n"
                                "  }\n"
                                "}\n")
                  .empty());
}

TEST(LumosLint, CatchAllThatConvertsToTypedErrorIsClean) {
  EXPECT_TRUE(lint::lint_source(
                  "obs/writer.cpp",
                  "void save() {\n"
                  "  try { emit(); } catch (...) {\n"
                  "    throw InternalError(\"emit failed\");\n"
                  "  }\n"
                  "}\n")
                  .empty());
}

TEST(LumosLint, CatchAllThatCapturesCurrentExceptionIsClean) {
  // The ThreadPool idiom: stash the exception for a deferred rethrow on
  // the caller's thread.
  EXPECT_TRUE(lint::lint_source(
                  "analysis/sweep.cpp",
                  "void worker() {\n"
                  "  try { step(); } catch (...) {\n"
                  "    first_error = std::current_exception();\n"
                  "  }\n"
                  "}\n")
                  .empty());
}

TEST(LumosLint, CatchAllAllowlistsThreadPoolAndSkipsNonLibraryTrees) {
  const std::string swallow =
      "void f() { try { g(); } catch (...) { } }\n";
  // The pool's worker-loop boundary is the sanctioned swallower.
  EXPECT_TRUE(lint::lint_source("util/thread_pool.cpp", swallow).empty());
  EXPECT_TRUE(lint::lint_source("util/thread_pool.hpp",
                                "#pragma once\n" + swallow)
                  .empty());
  // tools/ and tests/ are outside the checked library surface.
  EXPECT_TRUE(lint::lint_source("tools/lumos_cli.cpp", swallow).empty());
  // Library siblings stay checked.
  EXPECT_FALSE(lint::lint_source("util/csv.cpp", swallow).empty());
  // bench harnesses are library-grade code too.
  EXPECT_FALSE(lint::lint_source("bench/table1_traces.cpp", swallow).empty());
}

TEST(LumosLint, CatchAllInCommentsAndStringsIgnored) {
  EXPECT_TRUE(lint::lint_source(
                  "sim/notes.cpp",
                  "// catch (...) { swallow(); }\n"
                  "const char* kDoc = \"catch (...) {}\";\n")
                  .empty());
}

TEST(LumosLint, FlagsRawExitInLibraryCode) {
  const auto diags = lint::lint_source(
      "trace/loader.cpp",
      "void fail(int code) {\n"
      "  std::exit(code);\n"
      "  abort();\n"
      "  std::quick_exit(1);\n"
      "  _Exit(2);\n"
      "}\n");
  ASSERT_EQ(diags.size(), 4u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "raw-exit");
  }
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[3].line, 5);
}

TEST(LumosLint, RawExitExemptsMainTusAndPosixUnderscoreExit) {
  // A TU that defines main() owns its process: exit/abort are its call.
  EXPECT_TRUE(lint::lint_source("bench/tool.cpp",
                                "int main(int argc, char** argv) {\n"
                                "  if (argc < 2) std::exit(2);\n"
                                "  std::abort();\n"
                                "}\n")
                  .empty());
  // Async-signal-safe POSIX _exit(2) — the only safe call between fork
  // and exec — is deliberately outside the rule.
  EXPECT_TRUE(lint::lint_source("supervise/process.cpp",
                                "void child() { _exit(127); }\n")
                  .empty());
  // tools/ and tests/ are outside the checked library surface.
  EXPECT_TRUE(lint::lint_source("tools/cli.cpp",
                                "void die() { std::exit(1); }\n")
                  .empty());
  // Mentions in comments and strings never trip the rule.
  EXPECT_TRUE(lint::lint_source(
                  "sim/notes.cpp",
                  "// calls std::exit(1) on failure\n"
                  "const char* kDoc = \"abort() if unset\";\n")
                  .empty());
}

TEST(LumosLint, RawStringDelimitersAndContentsAreStripped) {
  // d-char-seq raw strings: the banned tokens live inside
  // R"delim(...)delim" and a plain )" inside the body must not end the
  // literal early (that would leak `rand()` into the scan).
  EXPECT_TRUE(lint::lint_source(
                  "sim/notes.cpp",
                  "const char* a = R\"x(std::cout << rand();)x\";\n"
                  "const char* b = R\"re(quote)\" then rand() still inside)re\";\n")
                  .empty());
  // Code after the raw literal on the same line is still scanned.
  const auto diags = lint::lint_source(
      "sim/notes.cpp", "const char* c = R\"(text)\"; int r = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "banned-rng");
}

TEST(LumosLint, BackslashContinuationExtendsLineComments) {
  // A // comment ending in a backslash splices the next physical line
  // into the comment (translation phase 2): rand() on the spliced line
  // is commentary, not code.
  EXPECT_TRUE(lint::lint_source("sim/notes.cpp",
                                "// disabled: \\\n"
                                "int r = rand();\n")
                  .empty());
  // CRLF between the backslash and the newline still splices.
  EXPECT_TRUE(lint::lint_source("sim/notes.cpp",
                                "// disabled: \\\r\n"
                                "int r = rand();\n")
                  .empty());
  // The line after the spliced one is real code again.
  const auto diags = lint::lint_source("sim/notes.cpp",
                                       "// off: \\\n"
                                       "still comment\n"
                                       "int r = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LumosLint, SuppressionWithReasonSilencesOwnAndNextLine) {
  // Same line.
  EXPECT_TRUE(lint::lint_source(
                  "sim/seedy.cpp",
                  "int r = rand();  // lumos-lint: allow(banned-rng) "
                  "fixture exercises libc fallback\n")
                  .empty());
  // Line above.
  EXPECT_TRUE(lint::lint_source(
                  "sim/seedy.cpp",
                  "// lumos-lint: allow(banned-rng) fixture exercises "
                  "libc fallback\n"
                  "int r = rand();\n")
                  .empty());
}

TEST(LumosLint, SuppressionIsRuleScoped) {
  // An allow() for a different rule does not silence the finding.
  const auto diags = lint::lint_source(
      "sim/seedy.cpp",
      "// lumos-lint: allow(stdout-io) wrong rule\n"
      "int r = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "banned-rng");
}

TEST(LumosLint, ReasonlessSuppressionIsAFinding) {
  const auto diags = lint::lint_source("sim/seedy.cpp",
                                       "// lumos-lint: allow(banned-rng)\n"
                                       "int r = rand();\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "lint-suppression");
  EXPECT_EQ(diags[1].rule, "banned-rng");
}

TEST(LumosLint, LintTreePublishesScanMetrics) {
  // The registry overload reports files scanned, findings, and duration.
  const auto dir = std::filesystem::temp_directory_path() /
                   "lumos_lint_metrics_fixture";
  std::filesystem::create_directories(dir / "sim");
  {
    std::ofstream out(dir / "sim" / "bad.cpp");
    out << "int r = rand();\n";
  }
  lumos::obs::Registry registry;
  const auto diags = lint::lint_tree(dir, "", registry);
  std::filesystem::remove_all(dir);
  ASSERT_EQ(diags.size(), 1u);
  const auto snap = registry.snapshot();
  bool saw_files = false;
  bool saw_findings = false;
  for (const auto& c : snap.counters) {
    if (c.name == "lint.files") {
      saw_files = true;
      EXPECT_EQ(c.value, 1u);
    }
    if (c.name == "lint.findings") {
      saw_findings = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(saw_files);
  EXPECT_TRUE(saw_findings);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lint.tree_seconds");
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(LumosLint, CleanFixtureReportsNothing) {
  const auto diags = lint::lint_source("sim/clean.hpp",
                                       "// A well-behaved header.\n"
                                       "#pragma once\n"
                                       "#include \"util/rng.hpp\"\n"
                                       "#include <vector>\n"
                                       "namespace lumos::sim {\n"
                                       "double advance(double now, "
                                       "util::Rng& rng);\n"
                                       "}  // namespace lumos::sim\n");
  EXPECT_TRUE(diags.empty());
}

}  // namespace
}  // namespace lumos
