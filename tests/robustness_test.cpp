// Robustness sweep: generator and analysis invariants that must hold for
// EVERY system at seeds other than the default — guarding the shape
// reproduction against seed overfitting (TEST_P over system x seed).
#include <gtest/gtest.h>

#include "analysis/arrival.hpp"
#include "analysis/failure.hpp"
#include "analysis/geometry.hpp"
#include "analysis/user_behavior.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "trace/validate.hpp"

namespace lumos {
namespace {

struct Param {
  const char* system;
  std::uint64_t seed;
};

class SystemSweep : public ::testing::TestWithParam<Param> {
 protected:
  trace::Trace make(double days = 5.0) const {
    synth::GeneratorOptions options;
    options.seed = GetParam().seed;
    options.duration_days = days;
    return synth::generate_system(GetParam().system, options);
  }
};

TEST_P(SystemSweep, TraceValidatesAndIsNonTrivial) {
  const auto t = make();
  EXPECT_GT(t.size(), 200u);
  EXPECT_GT(t.user_count(), 20u);
  const auto report = trace::validate(t);
  EXPECT_TRUE(report.consistent()) << report.to_string();
}

TEST_P(SystemSweep, StatusMixStaysInPaperBand) {
  const auto t = make();
  const auto f = analysis::analyze_failures(t);
  const double passed = f.overall.job_fraction(trace::JobStatus::Passed);
  // Paper: Passed <70% everywhere but still the majority class band.
  EXPECT_GT(passed, 0.45) << GetParam().system;
  EXPECT_LT(passed, 0.85) << GetParam().system;
  // Killed jobs always cost more core-hours than their count share.
  EXPECT_GT(f.overall.core_hour_fraction(trace::JobStatus::Killed),
            f.overall.job_fraction(trace::JobStatus::Killed));
  // Failed jobs always cost less (they die early).
  EXPECT_LT(f.overall.core_hour_fraction(trace::JobStatus::Failed),
            f.overall.job_fraction(trace::JobStatus::Failed));
}

TEST_P(SystemSweep, RuntimePassRateFallsWithLength) {
  const auto t = make(10.0);
  const auto f = analysis::analyze_failures(t);
  // The trend is only meaningful with a populated Long category (small
  // HPC samples may contain a handful of >1-day jobs).
  const auto& long_tally =
      f.by_length[static_cast<std::size_t>(trace::LengthCategory::Long)];
  if (long_tally.total_jobs() < 15) {
    GTEST_SKIP() << "too few long jobs for a stable trend";
  }
  EXPECT_LT(f.pass_rate_length_trend, 0.0) << GetParam().system;
}

TEST_P(SystemSweep, RepetitionIsStrong) {
  const auto t = make(6.0);
  const auto r = analysis::analyze_repetition(t, 40);
  if (r.representative_users < 5) GTEST_SKIP() << "too few heavy users";
  EXPECT_GT(r.cumulative_share[9], 0.6) << GetParam().system;
  // Monotone cumulative coverage.
  for (int k = 1; k < 10; ++k) {
    EXPECT_GE(r.cumulative_share[k] + 1e-12, r.cumulative_share[k - 1]);
  }
}

TEST_P(SystemSweep, EasyBackfillingBeatsNone) {
  const auto t = make(3.0);
  sim::SimConfig none;
  none.backfill.kind = sim::BackfillKind::None;
  sim::SimConfig easy;
  easy.backfill.kind = sim::BackfillKind::Easy;
  const auto m_none = sim::compute_metrics(t, sim::simulate(t, none));
  const auto m_easy = sim::compute_metrics(t, sim::simulate(t, easy));
  // Backfilling never hurts average wait on these workloads (and there is
  // always something to backfill at HPC/DL load levels).
  EXPECT_LE(m_easy.avg_wait, m_none.avg_wait * 1.02) << GetParam().system;
  EXPECT_EQ(m_easy.jobs + 0, m_none.jobs);
}

TEST_P(SystemSweep, HourlyProfileCoversAllHours) {
  const auto t = make(6.0);
  const auto a = analysis::analyze_arrivals(t);
  double total = 0.0;
  for (double h : a.hourly) total += h;
  EXPECT_NEAR(total, static_cast<double>(t.size()), 0.5);
  EXPECT_GT(a.peak_ratio, 1.0);
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(info.param.system) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SystemSweep,
    ::testing::Values(Param{"BlueWaters", 7}, Param{"Mira", 7},
                      Param{"Theta", 7}, Param{"Philly", 7},
                      Param{"Helios", 7}, Param{"BlueWaters", 2026},
                      Param{"Mira", 2026}, Param{"Theta", 2026},
                      Param{"Philly", 2026}, Param{"Helios", 2026}),
    sweep_name);

}  // namespace
}  // namespace lumos
