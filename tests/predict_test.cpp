// Tests for the runtime-prediction pipeline: features, Last2 and the
// use-case-1 harness.
#include <gtest/gtest.h>

#include "predict/features.hpp"
#include "predict/harness.hpp"
#include "predict/last2.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace lumos::predict {
namespace {

trace::Trace tiny_trace() {
  trace::SystemSpec spec;
  spec.name = "T";
  spec.cores = 100;
  spec.primary_kind = trace::ResourceKind::Cpu;
  trace::Trace t(spec);
  auto add = [&](double submit, double wait, double run, std::uint32_t user,
                 trace::JobStatus status = trace::JobStatus::Passed) {
    trace::Job j;
    j.submit_time = submit;
    j.wait_time = wait;
    j.run_time = run;
    j.cores = 4;
    j.user = user;
    j.status = status;
    t.add(j);
  };
  // User 1: two completed jobs, then a third that sees both in history.
  add(0, 0, 100, 1);
  add(10, 0, 50, 1);
  add(1000, 0, 80, 1);
  // User 2 first job: no history.
  add(1500, 0, 10, 2, trace::JobStatus::Killed);
  t.sort_by_submit();
  return t;
}

TEST(Features, NamesMatchWidth) {
  const auto t = tiny_trace();
  const auto feats = extract_features(t);
  ASSERT_EQ(feats.size(), 4u);
  EXPECT_EQ(feats[0].values.size(), base_feature_names().size());
}

TEST(Features, HistoryOnlyIncludesCompletedJobs) {
  const auto feats = extract_features(tiny_trace());
  // Job 0: no history.
  EXPECT_DOUBLE_EQ(feats[0].last_run, 0.0);
  // Job 1 (submit 10): job 0 ends at t=100, not yet complete.
  EXPECT_DOUBLE_EQ(feats[1].last_run, 0.0);
  // Job 2 (submit 1000): both prior user-1 jobs completed. "Most recent"
  // is by completion time: job 0 finished at t=100, after job 1 (t=60).
  EXPECT_DOUBLE_EQ(feats[2].last_run, 100.0);
  EXPECT_DOUBLE_EQ(feats[2].last_run2, 50.0);
  ASSERT_EQ(feats[2].recent_runs.size(), 2u);
  // User 2 never saw anything.
  EXPECT_TRUE(feats[3].recent_runs.empty());
}

TEST(Features, StatusPropagates) {
  const auto feats = extract_features(tiny_trace());
  EXPECT_EQ(feats[3].status, trace::JobStatus::Killed);
}

TEST(BuildDataset, BaselineOneRowPerJob) {
  const auto feats = extract_features(tiny_trace());
  const auto data = build_dataset(feats, {});
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(data.dims(), base_feature_names().size());
  EXPECT_NEAR(data.y[0], std::log1p(100.0), 1e-12);
}

TEST(BuildDataset, ElapsedGridAugments) {
  const auto feats = extract_features(tiny_trace());
  // Grid {0, 60}: every job emits a row at 0; only runtimes > 60 emit the
  // second row (jobs 0 and 2).
  const std::vector<double> grid{0.0, 60.0};
  std::vector<bool> censored;
  const auto data = build_dataset(feats, grid, &censored);
  EXPECT_EQ(data.size(), 6u);
  EXPECT_EQ(data.dims(), base_feature_names().size() + 1);
  ASSERT_EQ(censored.size(), 6u);
  // The killed job contributes exactly one (censored) row.
  int censored_rows = 0;
  for (bool c : censored) censored_rows += c;
  EXPECT_EQ(censored_rows, 1);
}

TEST(TargetTransform, RoundTrips) {
  for (double run : {0.0, 1.0, 90.0, 86400.0}) {
    EXPECT_NEAR(runtime_of_target(target_of_runtime(run)), run,
                1e-9 * (run + 1.0));
  }
}

TEST(Last2, BaselineAveragesLastTwo) {
  Last2 model;
  JobFeatures f;
  f.recent_runs = {100.0, 50.0, 10.0};
  EXPECT_DOUBLE_EQ(model.predict(f), 75.0);
  f.recent_runs = {100.0};
  EXPECT_DOUBLE_EQ(model.predict(f), 100.0);
  f.recent_runs.clear();
  EXPECT_DOUBLE_EQ(model.predict(f), Last2Options{}.cold_start_s);
}

TEST(Last2, ElapsedSkipsRuntimesBelowBound) {
  Last2 model;
  JobFeatures f;
  f.recent_runs = {20.0, 300.0, 500.0};  // most recent first
  // With elapsed 60, the 20 s run is ruled out; average of 300 and 500.
  EXPECT_DOUBLE_EQ(model.predict_with_elapsed(f, 60.0), 400.0);
  // With elapsed 400, only 500 survives.
  EXPECT_DOUBLE_EQ(model.predict_with_elapsed(f, 400.0), 500.0);
  // With elapsed 600, nothing survives: fallback multiple of elapsed.
  EXPECT_DOUBLE_EQ(model.predict_with_elapsed(f, 600.0), 1200.0);
}

TEST(Last2, PredictionNeverBelowElapsed) {
  Last2 model;
  JobFeatures f;
  f.recent_runs = {100.0};
  EXPECT_GE(model.predict_with_elapsed(f, 250.0), 250.0);
}

TEST(Harness, RejectsTinyTraces) {
  EXPECT_THROW(run_prediction_study(tiny_trace()), InvalidArgument);
}

TEST(Harness, ElapsedReducesUnderestimation) {
  synth::GeneratorOptions options;
  options.duration_days = 4.0;
  const auto trace = synth::generate_system("Philly", options);

  StudyConfig config;
  config.max_jobs = 3000;
  config.models = {ModelKind::Last2, ModelKind::LinearReg,
                   ModelKind::Xgboost};
  const auto result = run_prediction_study(trace, config);
  EXPECT_GT(result.avg_runtime_s, 0.0);

  for (auto model : config.models) {
    for (double frac : config.elapsed_fractions) {
      const auto& base = result.row(model, false, frac);
      const auto& with = result.row(model, true, frac);
      EXPECT_EQ(base.test_jobs, with.test_jobs);
      // The paper's headline: elapsed time lowers the underestimate rate.
      EXPECT_LT(with.underestimate_rate, base.underestimate_rate)
          << to_string(model) << " @" << frac;
    }
  }
}

TEST(Harness, RowLookupThrowsOnMissing) {
  StudyResult result;
  EXPECT_THROW((void)result.row(ModelKind::Mlp, true, 0.5), InvalidArgument);
}

TEST(Harness, ModelNames) {
  EXPECT_EQ(to_string(ModelKind::Last2), "Last2");
  EXPECT_EQ(to_string(ModelKind::Tobit), "Tobit");
  EXPECT_EQ(to_string(ModelKind::Xgboost), "XGBoost");
  EXPECT_EQ(to_string(ModelKind::LinearReg), "LR");
  EXPECT_EQ(to_string(ModelKind::Mlp), "MLP");
}

}  // namespace
}  // namespace lumos::predict
