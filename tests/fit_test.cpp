// Tests for calibration fitting (synth/fit.hpp): parameter recovery on
// generated traces and full generate -> fit -> regenerate round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "synth/fit.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace lumos::synth {
namespace {

trace::Trace sample(const char* system, double days,
                    std::uint64_t seed = 42) {
  GeneratorOptions options;
  options.seed = seed;
  options.duration_days = days;
  return generate_system(system, options);
}

TEST(Fit, RejectsTinyTraces) {
  trace::Trace t(trace::theta_spec());
  EXPECT_THROW(fit_calibration(t), InvalidArgument);
}

TEST(Fit, RecoversRuntimeDistribution) {
  const auto t = sample("Mira", 10.0);
  const auto fit = fit_calibration(t);
  const auto original = mira_calibration();
  // The fitted lognormal should land near the generating one (fitting uses
  // Passed jobs; kills/fails distort the tails slightly).
  EXPECT_NEAR(fit.calibration.log_run_mu, original.log_run_mu, 0.5);
  EXPECT_NEAR(fit.calibration.log_run_sigma, original.log_run_sigma, 0.5);
}

TEST(Fit, RecoversArrivalRegime) {
  const auto t = sample("Helios", 2.0);
  const auto fit = fit_calibration(t);
  // Helios is burst-dominated with tiny gaps.
  EXPECT_GT(fit.calibration.burst_prob, 0.5);
  EXPECT_LT(fit.calibration.burst_mean_s, 10.0);
  // And strongly diurnal: the fitted hourly profile must vary.
  double lo = 1e9, hi = 0.0;
  for (double h : fit.calibration.hourly) {
    lo = std::min(lo, h);
    hi = std::max(hi, h);
  }
  EXPECT_GT(hi / lo, 2.0);
}

TEST(Fit, RecoversStatusModelDirection) {
  const auto t = sample("Mira", 10.0);
  const auto fit = fit_calibration(t);
  // The kill sigmoid must slope upward in runtime: max > base, and the
  // midpoint must sit above the median runtime (kills concentrate on long
  // jobs).
  EXPECT_GT(fit.calibration.kill_max, fit.calibration.kill_base + 0.1);
  EXPECT_GT(fit.calibration.kill_log_mid,
            std::log(stats::median(t.run_times())));
  EXPECT_GT(fit.calibration.fail_base, 0.02);
  EXPECT_LT(fit.calibration.fail_base, 0.25);
}

TEST(Fit, SizesMatchEmpiricalSupport) {
  const auto t = sample("Philly", 2.0);
  const auto fit = fit_calibration(t);
  ASSERT_FALSE(fit.calibration.sizes.empty());
  // The most frequent size on Philly is 1 GPU.
  EXPECT_EQ(fit.calibration.sizes.front().cores, 1u);
  // All fitted sizes exist in the trace.
  for (const auto& choice : fit.calibration.sizes) {
    bool found = false;
    for (const auto& j : t.jobs()) {
      if (j.cores == choice.cores) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << choice.cores;
  }
}

TEST(Fit, WalltimeAvailabilityFollowsData) {
  EXPECT_TRUE(fit_calibration(sample("Theta", 6.0)).calibration
                  .emit_walltime);
  EXPECT_FALSE(fit_calibration(sample("Philly", 2.0)).calibration
                   .emit_walltime);
}

TEST(Fit, RoundTripPreservesKeyMarginals) {
  // generate -> fit -> regenerate: the regenerated trace's headline
  // statistics must stay within a factor ~2 of the source's.
  const auto original = sample("Philly", 6.0);
  const auto fit = fit_calibration(original);

  GeneratorOptions regen_options;
  regen_options.seed = 7;
  regen_options.duration_days = 6.0;
  WorkloadGenerator generator(fit.calibration, regen_options);
  const auto regen = generator.generate();
  ASSERT_GT(regen.size(), 100u);

  const double run_a = stats::median(original.run_times());
  const double run_b = stats::median(regen.run_times());
  EXPECT_GT(run_b, run_a / 2.5);
  EXPECT_LT(run_b, run_a * 2.5);

  const double gap_a = stats::median(original.interarrival_times());
  const double gap_b = stats::median(regen.interarrival_times());
  EXPECT_GT(gap_b, gap_a / 3.0);
  EXPECT_LT(gap_b, gap_a * 3.0);

  std::size_t passed_a = 0, passed_b = 0, single_b = 0;
  for (const auto& j : original.jobs()) {
    passed_a += j.status == trace::JobStatus::Passed;
  }
  for (const auto& j : regen.jobs()) {
    passed_b += j.status == trace::JobStatus::Passed;
    single_b += j.cores == 1;
  }
  const double pa = static_cast<double>(passed_a) / original.size();
  const double pb = static_cast<double>(passed_b) / regen.size();
  EXPECT_NEAR(pa, pb, 0.15);
  // Philly's single-GPU dominance survives the round trip.
  EXPECT_GT(static_cast<double>(single_b) / regen.size(), 0.6);
}

TEST(Fit, DiagnosticsMatchTrace) {
  const auto t = sample("Theta", 6.0);
  const auto fit = fit_calibration(t);
  EXPECT_NEAR(fit.diagnostics.runtime_median_s,
              stats::median(t.run_times()), 1e-9);
  EXPECT_EQ(fit.diagnostics.distinct_sizes, fit.calibration.sizes.size());
  EXPECT_GT(fit.diagnostics.passed_fraction, 0.4);
}

}  // namespace
}  // namespace lumos::synth
