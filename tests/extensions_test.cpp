// Tests for the extension components: logistic regression, the status
// predictor, the estimate-driven backfilling study, and the elapsed-mode
// ablation of the prediction harness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimate_study.hpp"
#include "ml/logistic.hpp"
#include "predict/harness.hpp"
#include "predict/status_predictor.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lumos {
namespace {

// ---------------------------------------------------- LogisticRegression --

TEST(Logistic, SeparatesLinearlySeparableData) {
  util::Rng rng(3);
  const std::size_t n = 600;
  ml::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    x(i, 0) = a;
    x(i, 1) = b;
    y[i] = (a + b > 0.0) ? 1.0 : 0.0;
  }
  ml::LogisticRegression model;
  model.fit(x, y);
  EXPECT_GT(model.accuracy(x, y), 0.95);
}

TEST(Logistic, ProbabilitiesAreCalibratedDirectionally) {
  util::Rng rng(5);
  const std::size_t n = 500;
  ml::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-3.0, 3.0);
    y[i] = rng.bernoulli(1.0 / (1.0 + std::exp(-2.0 * x(i, 0)))) ? 1.0 : 0.0;
  }
  ml::LogisticRegression model;
  model.fit(x, y);
  EXPECT_LT(model.predict_proba(std::vector<double>{-2.0}), 0.2);
  EXPECT_GT(model.predict_proba(std::vector<double>{2.0}), 0.8);
}

TEST(Logistic, RejectsBadShapes) {
  ml::LogisticRegression model;
  ml::Matrix x(2, 1);
  EXPECT_THROW(model.fit(x, std::vector<double>{1.0}), InvalidArgument);
  EXPECT_THROW((void)model.predict_proba(std::vector<double>{0.0}),
               InvalidArgument);
}

// -------------------------------------------------------- StatusPredictor --

trace::Trace philly_sample(double days = 4.0, std::size_t max_jobs = 4000) {
  synth::GeneratorOptions options;
  options.duration_days = days;
  options.max_jobs = max_jobs;
  return synth::generate_system("Philly", options);
}

TEST(StatusStudy, ElapsedImprovesDoomedClassification) {
  // A longer sample: the survival signal needs enough jobs past the last
  // elapsed threshold to dominate classifier noise.
  const auto trace = philly_sample(8.0, 9000);
  const auto result = predict::run_status_study(trace);
  ASSERT_FALSE(result.rows.empty());
  for (const auto& row : result.rows) {
    EXPECT_GT(row.test_jobs, 50u);
    // The elapsed variant is at least competitive with the baseline (it
    // strictly adds information; small samples allow slight noise).
    EXPECT_GE(row.accuracy, row.base_accuracy - 0.03);
  }
  // At the largest elapsed threshold the survival signal is strong: the
  // elapsed classifier clearly beats the baseline (cf. Fig 11's separable
  // distributions).
  const auto& last = result.rows.back();
  EXPECT_GT(last.accuracy, last.base_accuracy + 0.05);
}

TEST(StatusStudy, RejectsTinyTrace) {
  trace::Trace tiny(trace::philly_spec());
  EXPECT_THROW(predict::run_status_study(tiny), InvalidArgument);
}

TEST(StatusPredictor, LongRunningJobsLookMoreDoomed) {
  const auto trace = philly_sample();
  const predict::StatusPredictor predictor(trace);
  const auto feats = predict::extract_features(trace);
  // Average doom probability should rise with elapsed time (long-running
  // jobs are overwhelmingly Killed in every system, Fig 7b).
  double p_short = 0.0, p_long = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(feats.size(), 500);
       ++i) {
    p_short += predictor.doom_probability(feats[i], 30.0);
    p_long += predictor.doom_probability(feats[i], 2.0 * 86400.0);
    ++n;
  }
  EXPECT_GT(p_long / n, p_short / n);
}

// ---------------------------------------------------------- EstimateStudy --

TEST(EstimateStudy, CoversAllSourcesOnHpc) {
  synth::GeneratorOptions options;
  options.duration_days = 4.0;
  const auto trace = synth::generate_system("Theta", options);
  const auto result = core::run_estimate_study(trace);
  // user-request + oracle + last2 + gbrt.
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0].source, core::EstimateSource::UserRequest);

  for (const auto& row : result.rows) {
    EXPECT_GT(row.metrics.jobs, 0u) << to_string(row.source);
    EXPECT_GT(row.metrics.utilization, 0.0);
  }
  // The oracle never underestimates and is perfectly accurate.
  const auto& oracle = result.rows[1];
  EXPECT_EQ(oracle.source, core::EstimateSource::Oracle);
  EXPECT_NEAR(oracle.estimate_accuracy, 1.0, 1e-9);
  EXPECT_EQ(oracle.killed_by_underestimate, 0u);
  // User requests are padded, so they rarely underestimate but are loose.
  const auto& user = result.rows[0];
  EXPECT_LT(user.estimate_accuracy, oracle.estimate_accuracy);
}

TEST(EstimateStudy, DlTraceSkipsUserRequests) {
  const auto trace = philly_sample();
  const auto result = core::run_estimate_study(trace);
  ASSERT_EQ(result.rows.size(), 3u);  // no user-request source
  EXPECT_EQ(result.rows[0].source, core::EstimateSource::Oracle);
  EXPECT_FALSE(render_estimate_study(result).empty());
}

TEST(EstimateStudy, UnderestimatesKillJobs) {
  const auto trace = philly_sample();
  const auto result = core::run_estimate_study(trace);
  // Last2/GBRT predictions will undershoot some heavy-tailed runtimes.
  bool any_killed = false;
  for (const auto& row : result.rows) {
    if (row.source != core::EstimateSource::Oracle &&
        row.killed_by_underestimate > 0) {
      any_killed = true;
      EXPECT_GT(row.wasted_core_hours, 0.0);
    }
  }
  EXPECT_TRUE(any_killed);
}

// ------------------------------------------------------- ElapsedMode ablation

TEST(ElapsedModeAblation, EveryModeReducesUnderestimation) {
  const auto trace = philly_sample();
  for (auto mode : {predict::ElapsedMode::FeatureAndClamp,
                    predict::ElapsedMode::FeatureOnly,
                    predict::ElapsedMode::ClampOnly}) {
    predict::StudyConfig config;
    config.max_jobs = 2500;
    config.models = {predict::ModelKind::LinearReg};
    config.elapsed_fractions = {0.25};
    config.elapsed_mode = mode;
    const auto result = predict::run_prediction_study(trace, config);
    const auto& base = result.row(predict::ModelKind::LinearReg, false, 0.25);
    const auto& with = result.row(predict::ModelKind::LinearReg, true, 0.25);
    EXPECT_LE(with.underestimate_rate, base.underestimate_rate)
        << to_string(mode);
  }
}

TEST(ElapsedModeAblation, Names) {
  EXPECT_EQ(to_string(predict::ElapsedMode::FeatureAndClamp),
            "feature+clamp");
  EXPECT_EQ(to_string(predict::ElapsedMode::FeatureOnly), "feature-only");
  EXPECT_EQ(to_string(predict::ElapsedMode::ClampOnly), "clamp-only");
}

}  // namespace
}  // namespace lumos
