// Additional edge-case and file-IO coverage across modules.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/lumos.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace lumos {
namespace {

// ------------------------------------------------------------- logging ---

TEST(Logging, LevelGatesMessages) {
  const auto old = util::log_level();
  util::set_log_level(util::LogLevel::Error);
  EXPECT_EQ(util::log_level(), util::LogLevel::Error);
  LUMOS_INFO << "should be suppressed (no crash)";
  util::set_log_level(util::LogLevel::Off);
  LUMOS_ERROR << "also suppressed";
  util::set_log_level(old);
}

// ----------------------------------------------------------- stats edge ---

TEST(EcdfEdge, SinglePointCurve) {
  const stats::Ecdf f(std::vector<double>{42.0});
  const auto curve = f.curve(1);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].first, 42.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.37), 42.0);
}

TEST(HistogramEdge, WeightedCounts) {
  auto h = stats::Histogram::linear(0.0, 10.0, 2);
  h.add(1.0, 2.5);
  h.add(9.0, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_NEAR(h.fraction(1), 0.5 / 3.0, 1e-12);
}

TEST(KdeEdge, ConstantSampleHasFallbackBandwidth) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stats::scott_bandwidth(xs), 1.0);
  const auto v = stats::violin(xs, 8);
  EXPECT_EQ(v.count, 4u);
  EXPECT_GT(v.density[0], 0.0);
}

// ----------------------------------------------------------- trace edge ---

TEST(TraceEdge, EmptyWindowAndStats) {
  trace::Trace t(trace::theta_spec());
  EXPECT_TRUE(t.window(0.0, 100.0).empty());
  EXPECT_DOUBLE_EQ(t.end_time(), 0.0);
  EXPECT_EQ(t.user_count(), 0u);
  EXPECT_TRUE(t.interarrival_times().empty());
}

TEST(LumosCsvEdge, MissingColumnThrows) {
  std::istringstream in("id,user\n1,2\n");
  EXPECT_THROW(trace::read_lumos_csv(in, trace::theta_spec()),
               lumos::ParseError);
}

TEST(DlCsvEdge, UnknownStatusThrows) {
  const std::string csv =
      "job_id,user,vc,submit_time,queue_delay,run_time,gpus,status\n"
      "1,10,3,0,5,600,1,Exploded\n";
  std::istringstream in(csv);
  EXPECT_THROW(trace::read_dl_csv(in, trace::philly_spec()),
               lumos::ParseError);
}

TEST(SwfFileIo, RoundTripsThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "lumos_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "tiny.swf").string();

  synth::GeneratorOptions options;
  options.duration_days = 0.5;
  options.max_jobs = 200;
  const auto original = synth::generate_system("Theta", options);
  trace::write_swf_file(path, original);
  const auto reloaded = trace::read_swf_file(path, original.spec());
  EXPECT_EQ(reloaded.size(), original.size());
  std::filesystem::remove_all(dir);
}

TEST(SwfFileIo, MissingFileThrows) {
  EXPECT_THROW(
      trace::read_swf_file("/nonexistent/path.swf", trace::theta_spec()),
      lumos::ParseError);
}

TEST(LumosCsvFileIo, RoundTripsThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "lumos_test2";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "tiny.csv").string();
  synth::GeneratorOptions options;
  options.duration_days = 0.5;
  options.max_jobs = 100;
  const auto original = synth::generate_system("Philly", options);
  trace::write_lumos_csv_file(path, original);
  const auto reloaded =
      trace::read_lumos_csv_file(path, original.spec());
  ASSERT_EQ(reloaded.size(), original.size());
  EXPECT_EQ(reloaded[0].virtual_cluster, original[0].virtual_cluster);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- sim edge ---

TEST(SimEdge, UnicepOrdersLikeWaitOverArea) {
  sim::PolicyJobView waited{0.0, 5000.0, 100.0, 8};
  sim::PolicyJobView fresh{0.0, 5.0, 100.0, 8};
  EXPECT_LT(sim::policy_score(sim::PolicyKind::Unicep, waited),
            sim::policy_score(sim::PolicyKind::Unicep, fresh));
}

TEST(SimEdge, ClusterReleaseOnUnknownPartitionIsNoop) {
  sim::Cluster c(10);
  c.release(5, 99);  // out of range: ignored
  EXPECT_EQ(c.free(0), 10u);
}

TEST(SimEdge, ZeroCoreJobTreatedAsOne) {
  trace::SystemSpec spec;
  spec.name = "Z";
  spec.cores = 4;
  trace::Trace t(spec);
  trace::Job j;
  j.cores = 0;
  j.run_time = 10;
  j.requested_time = 10;
  t.add(j);
  t.sort_by_submit();
  const auto r = sim::simulate(t, sim::SimConfig{});
  EXPECT_TRUE(r.outcomes[0].started());
}

// ------------------------------------------------------------ core edge ---

TEST(CoreEdge, EstimateSourceNames) {
  EXPECT_EQ(to_string(core::EstimateSource::UserRequest), "user-request");
  EXPECT_EQ(to_string(core::EstimateSource::Oracle), "oracle");
  EXPECT_EQ(to_string(core::EstimateSource::Last2), "last2");
  EXPECT_EQ(to_string(core::EstimateSource::Model), "gbrt");
}

TEST(CoreEdge, TakeawayRenderingMentionsVerdicts) {
  core::StudyOptions options;
  options.duration_days = 1.0;
  options.systems = {"Theta"};
  const core::CrossSystemStudy study(options);
  const auto text =
      core::render_takeaways(core::check_takeaways(study));
  EXPECT_NE(text.find("Takeaway 1"), std::string::npos);
  EXPECT_NE(text.find("Takeaway 8"), std::string::npos);
  EXPECT_NE(text.find("REPRODUCED"), std::string::npos);
}

// ----------------------------------------------------- generator patterns --

TEST(GeneratorPatterns, PhillyInvertedVsHeliosPeaked) {
  synth::GeneratorOptions options;
  options.duration_days = 6.0;
  const auto philly = synth::generate_system("Philly", options);
  const auto helios = synth::generate_system("Helios", options);
  const auto a_philly = analysis::analyze_arrivals(philly);
  const auto a_helios = analysis::analyze_arrivals(helios);
  // Philly submits *less* during business hours; Helios much more.
  EXPECT_LT(a_philly.business_hours_share, 0.42);
  EXPECT_GT(a_helios.business_hours_share, 0.5);
  EXPECT_GT(a_helios.peak_ratio, a_philly.peak_ratio);
}

TEST(GeneratorPatterns, WalltimeIsCoarse) {
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto t = synth::generate_system("Mira", options);
  for (const auto& j : t.jobs()) {
    ASSERT_TRUE(j.has_requested_time());
    // Requests are rounded to 30-minute multiples.
    const double r = j.requested_time / 1800.0;
    EXPECT_NEAR(r, std::round(r), 1e-9);
  }
}

TEST(GeneratorPatterns, VirtualClustersStableForUser) {
  synth::GeneratorOptions options;
  options.duration_days = 2.0;
  const auto t = synth::generate_system("Philly", options);
  std::unordered_map<std::uint32_t, std::int32_t> vc_of_user;
  for (const auto& j : t.jobs()) {
    const auto [it, inserted] = vc_of_user.emplace(j.user, j.virtual_cluster);
    if (!inserted) {
      EXPECT_EQ(it->second, j.virtual_cluster);
    }
  }
}

// --------------------------------------------------------- report pieces --

TEST(ReportPieces, HourlyTableHas24Rows) {
  core::StudyOptions options;
  options.duration_days = 1.0;
  options.systems = {"Helios"};
  const core::CrossSystemStudy study(options);
  const auto text = analysis::render_hourly(study.arrivals());
  // Header + separator + 24 hour rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 26);
}

TEST(ReportPieces, RuntimeCdfQuantilesOrdered) {
  core::StudyOptions options;
  options.duration_days = 1.0;
  options.systems = {"Theta"};
  const core::CrossSystemStudy study(options);
  const auto geo = study.geometries();
  double prev = 0.0;
  for (int i = 1; i <= 9; ++i) {
    const double q = geo[0].runtime_cdf.quantile(i / 10.0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

// --------------------------------------------------------- backfill study --

TEST(BackfillStudyEdge, AblationShapesDiffer) {
  core::StudyOptions options;
  options.duration_days = 3.0;
  options.systems = {"Theta"};
  const core::CrossSystemStudy study(options);
  const auto& trace = study.trace("Theta");
  core::BackfillStudyConfig quad;
  quad.adaptive_shape = sim::AdaptiveShape::Quadratic;
  core::BackfillStudyConfig sqrt_shape;
  sqrt_shape.adaptive_shape = sim::AdaptiveShape::Sqrt;
  const auto a = core::compare_backfill(trace, quad);
  const auto b = core::compare_backfill(trace, sqrt_shape);
  // The relaxed baseline is identical across shapes; the adaptive arms
  // make different decisions (scheduling is chaotic, so only per-decision
  // allowances — covered in sim_test — are monotone, not global counts).
  EXPECT_DOUBLE_EQ(a.relaxed.avg_wait, b.relaxed.avg_wait);
  EXPECT_GT(a.adaptive.jobs, 0u);
  EXPECT_GT(b.adaptive.jobs, 0u);
  // Re-running a configuration reproduces it exactly (determinism).
  const auto a2 = core::compare_backfill(trace, quad);
  EXPECT_DOUBLE_EQ(a2.adaptive.avg_wait, a.adaptive.avg_wait);
  EXPECT_EQ(a2.adaptive.backfilled_jobs, a.adaptive.backfilled_jobs);
}

}  // namespace
}  // namespace lumos
