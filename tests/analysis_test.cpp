// Tests for the per-figure analyses on hand-crafted traces with exactly
// computable answers.
#include <gtest/gtest.h>

#include "analysis/arrival.hpp"
#include "analysis/categories.hpp"
#include "analysis/domination.hpp"
#include "analysis/failure.hpp"
#include "analysis/geometry.hpp"
#include "analysis/report.hpp"
#include "analysis/user_behavior.hpp"
#include "analysis/utilization.hpp"
#include "analysis/waiting.hpp"

namespace lumos::analysis {
namespace {

trace::SystemSpec spec100() {
  trace::SystemSpec spec;
  spec.name = "S";
  spec.cores = 100;
  spec.nodes = 100;
  spec.primary_kind = trace::ResourceKind::Cpu;
  return spec;
}

trace::Job job(double submit, double wait, double run, std::uint32_t cores,
               trace::JobStatus status = trace::JobStatus::Passed,
               std::uint32_t user = 0) {
  trace::Job j;
  j.submit_time = submit;
  j.wait_time = wait;
  j.run_time = run;
  j.cores = cores;
  j.status = status;
  j.user = user;
  return j;
}

trace::Trace make(std::vector<trace::Job> jobs) {
  trace::Trace t(spec100(), std::move(jobs));
  t.sort_by_submit();
  return t;
}

// ------------------------------------------------------------ categories --

TEST(Categories, SizeTallyFractions) {
  // capacity 100: small <10, middle 10..30, large >30.
  auto t = make({job(0, 0, 3600, 5), job(1, 0, 3600, 20),
                 job(2, 0, 3600, 50), job(3, 0, 3600, 50)});
  const auto tally = tally_by_size(t);
  EXPECT_EQ(tally.total_jobs(), 4u);
  EXPECT_DOUBLE_EQ(tally.job_fraction(trace::SizeCategory::Small), 0.25);
  EXPECT_DOUBLE_EQ(tally.job_fraction(trace::SizeCategory::Large), 0.5);
  // core-hours: 5, 20, 50, 50 -> large share = 100/125.
  EXPECT_DOUBLE_EQ(tally.core_hour_fraction(trace::SizeCategory::Large),
                   0.8);
}

TEST(Categories, LengthTallyWithMinimal) {
  auto t = make({job(0, 0, 30, 1), job(1, 0, 600, 1), job(2, 0, 7200, 1),
                 job(3, 0, 2 * 86400.0, 1)});
  const auto with_min = tally_by_length(t, true);
  EXPECT_EQ(with_min.jobs[static_cast<std::size_t>(
                trace::LengthCategory::Minimal)],
            1u);
  const auto without = tally_by_length(t, false);
  EXPECT_EQ(
      without.jobs[static_cast<std::size_t>(trace::LengthCategory::Short)],
      2u);
}

// -------------------------------------------------------------- geometry --

TEST(Geometry, SummariesAndFractions) {
  auto t = make({job(0, 0, 100, 1), job(1, 0, 200, 20),
                 job(2, 0, 400, 2000)});
  const auto g = analyze_geometry(t);
  EXPECT_DOUBLE_EQ(g.runtime_summary.median, 200.0);
  EXPECT_NEAR(g.frac_single_core, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.frac_over_10, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(g.frac_over_1000, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(g.cores_cdf(20.0), 2.0 / 3.0);
}

// -------------------------------------------------------------- arrivals --

TEST(Arrivals, GapStatistics) {
  auto t = make({job(0, 0, 1, 1), job(5, 0, 1, 1), job(10, 0, 1, 1),
                 job(200, 0, 1, 1)});
  const auto a = analyze_arrivals(t);
  EXPECT_NEAR(a.frac_within_10s, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.interarrival_summary.max, 190.0);
  EXPECT_EQ(a.hourly.size(), 24u);
}

// ------------------------------------------------------------ domination --

TEST(Domination, FindsDominantGroups) {
  // One giant long job dominates core hours.
  auto t = make({job(0, 0, 2 * 86400.0, 50), job(1, 0, 60, 1),
                 job(2, 0, 60, 1)});
  const auto d = analyze_domination(t);
  EXPECT_EQ(d.dominant_size, trace::SizeCategory::Large);
  EXPECT_EQ(d.dominant_length, trace::LengthCategory::Long);
  EXPECT_GT(d.dominant_length_share, 0.99);
}

// ----------------------------------------------------------- utilization --

TEST(Utilization, ExactBusyFraction) {
  // One job: 50 cores for 1800 s starting at t=0 -> first hour 25% busy.
  auto t = make({job(0, 0, 1800, 50)});
  const auto u = analyze_utilization(t, 3600.0);
  ASSERT_EQ(u.series.size(), 1u);
  EXPECT_NEAR(u.series[0], 0.25, 1e-12);
  EXPECT_NEAR(u.average, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(u.clamped_fraction, 0.0);
}

TEST(Utilization, SpansBucketsAndClamps) {
  // 200 cores on a 100-core system: clamped to 1.0. A trailing submission
  // extends the measurement horizon to cover both hours (the series only
  // spans the submission window).
  auto t = make({job(0, 0, 7200, 100), job(0, 0, 7200, 100),
                 job(7200, 0, 1, 1)});
  const auto u = analyze_utilization(t, 3600.0);
  ASSERT_EQ(u.series.size(), 2u);
  EXPECT_DOUBLE_EQ(u.series[0], 1.0);
  EXPECT_DOUBLE_EQ(u.series[1], 1.0);
  EXPECT_NEAR(u.clamped_fraction, 0.5, 1e-6);
}

TEST(Utilization, WaitShiftsStart) {
  auto t = make({job(0, 3600, 3600, 100), job(7200, 0, 1, 1)});
  const auto u = analyze_utilization(t, 3600.0);
  ASSERT_EQ(u.series.size(), 2u);
  EXPECT_DOUBLE_EQ(u.series[0], 0.0);
  EXPECT_NEAR(u.series[1], 1.0, 1e-9);
}

TEST(Utilization, HorizonStopsAtLastSubmission) {
  // One job whose execution extends far past the submission window: only
  // the window is measured (the paper's Fig 3 covers collection periods).
  auto t = make({job(0, 0, 10.0 * 3600.0, 100)});
  const auto u = analyze_utilization(t, 3600.0);
  EXPECT_EQ(u.series.size(), 1u);
  EXPECT_DOUBLE_EQ(u.series[0], 1.0);
}

// --------------------------------------------------------------- waiting --

TEST(Waiting, GroupsAndExtremes) {
  auto t = make({
      job(0, 5, 60, 5),            // small, short, tiny wait
      job(1, 1000, 7200, 20),      // middle size, middle length
      job(2, 100, 2 * 86400.0, 50) // large, long
  });
  const auto w = analyze_waiting(t);
  EXPECT_NEAR(w.frac_wait_under_10s, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(w.longest_wait_size, trace::SizeCategory::Middle);
  EXPECT_EQ(w.longest_wait_length, trace::LengthCategory::Middle);
  EXPECT_DOUBLE_EQ(
      w.mean_wait_by_size[static_cast<std::size_t>(
          trace::SizeCategory::Large)],
      100.0);
}

// --------------------------------------------------------------- failure --

TEST(Failure, OverallTalliesAndCoreHours) {
  auto t = make({job(0, 0, 3600, 10, trace::JobStatus::Passed),
                 job(1, 0, 3600, 10, trace::JobStatus::Failed),
                 job(2, 0, 7200, 10, trace::JobStatus::Killed),
                 job(3, 0, 3600, 10, trace::JobStatus::Passed)});
  const auto f = analyze_failures(t);
  EXPECT_DOUBLE_EQ(f.overall.job_fraction(trace::JobStatus::Passed), 0.5);
  EXPECT_DOUBLE_EQ(f.overall.job_fraction(trace::JobStatus::Killed), 0.25);
  // Core hours: killed 20 of 50 total.
  EXPECT_DOUBLE_EQ(f.overall.core_hour_fraction(trace::JobStatus::Killed),
                   0.4);
}

TEST(Failure, LengthTrendNegativeWhenLongJobsDie) {
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(job(i, 0, 60, 1, trace::JobStatus::Passed));       // short
    jobs.push_back(job(i + 100, 0, 2 * 86400.0, 1,
                       trace::JobStatus::Killed));                     // long
  }
  const auto f = analyze_failures(make(std::move(jobs)));
  EXPECT_LT(f.pass_rate_length_trend, 0.0);
}

// ----------------------------------------------------------- user groups --

TEST(ConfigGroups, ExactGroupingRule) {
  // Same cores, runtimes within 10% of the running mean -> one group;
  // different cores -> separate group.
  std::vector<trace::Job> jobs{
      job(0, 0, 100, 4), job(1, 0, 105, 4), job(2, 0, 95, 4),  // group A
      job(3, 0, 500, 4),                                        // group B
      job(4, 0, 100, 8),                                        // group C
  };
  const auto sizes = config_group_sizes(jobs);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 1u);
}

TEST(Repetition, CumulativeSharesMonotone) {
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 60; ++i) {
    jobs.push_back(job(i, 0, i % 3 == 0 ? 100 : 200, 4,
                       trace::JobStatus::Passed, 1));
  }
  const auto r = analyze_repetition(make(std::move(jobs)), 10);
  EXPECT_EQ(r.representative_users, 1u);
  for (int k = 1; k < 10; ++k) {
    EXPECT_GE(r.cumulative_share[k], r.cumulative_share[k - 1]);
  }
  EXPECT_NEAR(r.cumulative_share[9], 1.0, 1e-12);
  EXPECT_NEAR(r.cumulative_share[0], 2.0 / 3.0, 1e-12);
}

// ----------------------------------------------------------- queue study --

TEST(QueueLength, HandComputed) {
  // Job 0 waits 100 s; job 1 submitted at t=50 sees 1 queued; job 2 at
  // t=200 sees 0 (job 0 started at 100; job 1 started at 60... wait 10).
  auto t = make({job(0, 100, 10, 1), job(50, 10, 10, 1), job(200, 0, 1, 1)});
  const auto q = queue_length_at_submit(t);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0], 0u);
  EXPECT_EQ(q[1], 1u);
  EXPECT_EQ(q[2], 0u);
}

TEST(QueueBehavior, BucketsCoverAllJobs) {
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 200; ++i) {
    jobs.push_back(job(i * 10.0, (i % 5) * 200.0, 60, 1 + (i % 4) * 10));
  }
  const auto r = analyze_queue_behavior(make(std::move(jobs)));
  std::size_t total = 0;
  for (auto n : r.jobs_per_bucket) total += n;
  EXPECT_EQ(total, 200u);
  for (std::size_t b = 0; b < kNumQueueBuckets; ++b) {
    if (r.jobs_per_bucket[b] == 0) continue;
    double mix = 0.0;
    for (std::size_t c = 0; c < kNumSizeCats; ++c) mix += r.size_mix[b][c];
    EXPECT_NEAR(mix, 1.0, 1e-9);
  }
}

// ------------------------------------------------------------ user status --

TEST(UserStatus, TopUsersOrdered) {
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 30; ++i) jobs.push_back(job(i, 0, 100, 1,
      trace::JobStatus::Passed, 1));
  for (int i = 0; i < 10; ++i) jobs.push_back(job(100 + i, 0, 900, 1,
      trace::JobStatus::Killed, 2));
  const auto r = analyze_user_status(make(std::move(jobs)), 2);
  ASSERT_EQ(r.top_users.size(), 2u);
  EXPECT_EQ(r.top_users[0].user, 1u);
  EXPECT_EQ(r.top_users[0].jobs, 30u);
  EXPECT_DOUBLE_EQ(
      r.top_users[1]
          .runtime[static_cast<std::size_t>(trace::JobStatus::Killed)]
          .median,
      900.0);
}

// ---------------------------------------------------------------- report --

TEST(Report, RendersNonEmptyTables) {
  auto t = make({job(0, 5, 60, 5), job(10, 50, 7200, 20),
                 job(20, 10, 90000, 50, trace::JobStatus::Killed)});
  EXPECT_FALSE(render_geometry({analyze_geometry(t)}).empty());
  EXPECT_FALSE(render_arrivals({analyze_arrivals(t)}).empty());
  EXPECT_FALSE(render_domination({analyze_domination(t)}).empty());
  EXPECT_FALSE(render_utilization({analyze_utilization(t)}).empty());
  EXPECT_FALSE(render_waiting({analyze_waiting(t)}).empty());
  EXPECT_FALSE(render_status_distribution({analyze_failures(t)}).empty());
  EXPECT_FALSE(render_repetition({analyze_repetition(t, 1)}).empty());
  EXPECT_FALSE(
      render_queue_behavior_size({analyze_queue_behavior(t)}).empty());
  EXPECT_FALSE(render_user_status({analyze_user_status(t)}).empty());
}

}  // namespace
}  // namespace lumos::analysis
