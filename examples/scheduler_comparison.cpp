// Scheduling-policy shoot-out on one system: every queue policy crossed
// with every backfill strategy, on the same synthetic trace.
//
//   ./scheduler_comparison [system] [days]
#include <cstdlib>
#include <iostream>

#include "core/lumos.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "Theta";
  const double days = argc > 2 ? std::atof(argv[2]) : 14.0;

  lumos::synth::GeneratorOptions options;
  options.duration_days = days;
  const auto trace = lumos::synth::generate_system(system, options);
  std::cout << "Scheduling " << trace.size() << " " << system
            << " jobs (" << days << " days)\n\n";

  using lumos::sim::BackfillKind;
  using lumos::sim::PolicyKind;
  const PolicyKind policies[] = {PolicyKind::Fcfs, PolicyKind::Sjf,
                                 PolicyKind::Wfp3, PolicyKind::Unicep,
                                 PolicyKind::Saf};
  const BackfillKind backfills[] = {BackfillKind::None, BackfillKind::Easy,
                                    BackfillKind::Conservative,
                                    BackfillKind::Relaxed,
                                    BackfillKind::AdaptiveRelaxed};

  lumos::util::TextTable table({"policy", "backfill", "avg wait (s)", "bsld",
                                "util", "violation (s)", "backfilled"});
  for (auto policy : policies) {
    for (auto backfill : backfills) {
      lumos::sim::SimConfig config;
      config.policy = policy;
      config.backfill.kind = backfill;
      const auto result = lumos::sim::simulate(trace, config);
      const auto m = lumos::sim::compute_metrics(trace, result);
      table.add_row({std::string(to_string(policy)),
                     std::string(to_string(backfill)),
                     lumos::util::fixed(m.avg_wait, 1),
                     lumos::util::fixed(m.avg_bounded_slowdown, 2),
                     lumos::util::fixed(m.utilization, 4),
                     lumos::util::fixed(m.violation, 1),
                     std::to_string(m.backfilled_jobs)});
    }
  }
  std::cout << table.render();
  return 0;
}
