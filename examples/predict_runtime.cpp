// Use case 1 demo: train the five runtime predictors on one system's
// history and show how the elapsed-time feature changes underestimation.
//
//   ./predict_runtime [system] [days] [max_jobs]
#include <cstdlib>
#include <iostream>

#include "core/lumos.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "Philly";
  const double days = argc > 2 ? std::atof(argv[2]) : 14.0;
  const std::size_t max_jobs =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 8000;

  lumos::synth::GeneratorOptions gen;
  gen.duration_days = days;
  const auto trace = lumos::synth::generate_system(system, gen);

  lumos::predict::StudyConfig config;
  config.max_jobs = max_jobs;
  std::cout << "Prediction study on " << system << " ("
            << std::min(trace.size(), max_jobs) << " jobs)\n";
  const auto result = lumos::predict::run_prediction_study(trace, config);
  std::cout << "average runtime: " << result.avg_runtime_s << " s\n\n";

  lumos::util::TextTable table({"model", "elapsed", "underest (base)",
                                "underest (+elapsed)", "accuracy (base)",
                                "accuracy (+elapsed)", "test jobs"});
  for (auto model :
       {lumos::predict::ModelKind::Last2, lumos::predict::ModelKind::Tobit,
        lumos::predict::ModelKind::Xgboost,
        lumos::predict::ModelKind::LinearReg, lumos::predict::ModelKind::Mlp}) {
    for (double frac : config.elapsed_fractions) {
      const auto& base = result.row(model, false, frac);
      const auto& with = result.row(model, true, frac);
      table.add_row({lumos::predict::to_string(model),
                     lumos::util::format("avg/%.0f", 1.0 / frac),
                     lumos::util::percent(base.underestimate_rate),
                     lumos::util::percent(with.underestimate_rate),
                     lumos::util::percent(base.accuracy),
                     lumos::util::percent(with.accuracy),
                     std::to_string(base.test_jobs)});
    }
  }
  std::cout << table.render();
  return 0;
}
