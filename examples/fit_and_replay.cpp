// Fit-and-replay: the "use lumos on your own trace" workflow end-to-end.
//
// 1. Take a trace (here: a synthetic Philly stand-in playing the role of a
//    site's private data; pass an SWF path to use real data).
// 2. Fit a SystemCalibration to it (synth::fit_calibration).
// 3. Regenerate a fresh, shareable workload from the fitted calibration and
//    show that the headline statistics survive the round trip.
// 4. Run the scheduling study on the regenerated workload.
//
//   ./fit_and_replay [swf_path system] [days]
#include <cstdlib>
#include <iostream>

#include "core/lumos.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

namespace {

void compare(const lumos::trace::Trace& a, const lumos::trace::Trace& b) {
  auto stat_row = [&](const char* name, double va, double vb) {
    std::cout << "  " << name << ": " << lumos::util::fixed(va, 1) << " vs "
              << lumos::util::fixed(vb, 1) << "\n";
  };
  std::cout << "Original vs regenerated (" << a.size() << " vs " << b.size()
            << " jobs):\n";
  stat_row("runtime p50 (s)", lumos::stats::median(a.run_times()),
           lumos::stats::median(b.run_times()));
  stat_row("gap p50 (s)", lumos::stats::median(a.interarrival_times()),
           lumos::stats::median(b.interarrival_times()));
  stat_row("wait p50 (s)", lumos::stats::median(a.wait_times()),
           lumos::stats::median(b.wait_times()));
  stat_row("cores p50", lumos::stats::median(a.cores_requested()),
           lumos::stats::median(b.cores_requested()));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    lumos::trace::Trace source;
    double days = 10.0;
    if (argc >= 3) {
      const auto spec = lumos::trace::find_system_spec(argv[2]);
      if (!spec) {
        std::cerr << "unknown system: " << argv[2] << "\n";
        return 2;
      }
      source = lumos::trace::read_swf_file(argv[1], *spec);
    } else {
      if (argc == 2) days = std::atof(argv[1]);
      lumos::synth::GeneratorOptions options;
      options.duration_days = days;
      source = lumos::synth::generate_system("Philly", options);
    }

    const auto fit = lumos::synth::fit_calibration(source);
    std::cout << "Fitted " << fit.calibration.spec.name << ": "
              << fit.diagnostics.distinct_sizes << " size classes, "
              << lumos::util::percent(fit.diagnostics.passed_fraction)
              << " passed, runtime p50 "
              << lumos::util::fixed(fit.diagnostics.runtime_median_s, 0)
              << " s\n\n";

    lumos::synth::GeneratorOptions regen_options;
    regen_options.seed = 2024;
    regen_options.duration_days = days;
    lumos::synth::WorkloadGenerator generator(fit.calibration, regen_options);
    const auto regen = generator.generate();
    compare(source, regen);

    // The regenerated trace drives the same studies as any other.
    lumos::sim::SimConfig config;
    config.backfill.kind = lumos::sim::BackfillKind::Easy;
    const auto metrics = lumos::sim::compute_metrics(
        regen, lumos::sim::simulate(regen, config));
    std::cout << "\nFCFS+EASY on the regenerated workload:\n  "
              << metrics.to_string() << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
