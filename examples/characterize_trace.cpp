// Cross-system characterization on real or synthetic traces.
//
//   ./characterize_trace                      # all five synthetic systems
//   ./characterize_trace --days 14 --seed 7   # faster, different seed
//   ./characterize_trace --swf file.swf --system Theta
//
// With --swf, the given SWF trace is characterized standalone (this is the
// path a user with the actual ALCF/NCSA downloads would take).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/lumos.hpp"

int main(int argc, char** argv) {
  std::string swf_path;
  std::string system = "Theta";
  lumos::core::StudyOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--swf" && i + 1 < argc) {
      swf_path = argv[++i];
    } else if (arg == "--system" && i + 1 < argc) {
      system = argv[++i];
    } else if (arg == "--days" && i + 1 < argc) {
      options.duration_days = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "usage: characterize_trace [--swf FILE --system NAME] "
                   "[--days D] [--seed S]\n";
      return 2;
    }
  }

  try {
    if (!swf_path.empty()) {
      const auto spec = lumos::trace::find_system_spec(system);
      if (!spec) {
        std::cerr << "unknown system: " << system << "\n";
        return 2;
      }
      auto trace = lumos::trace::read_swf_file(swf_path, *spec);
      std::cout << "Loaded " << trace.size() << " jobs from " << swf_path
                << "\n"
                << lumos::trace::validate(trace).to_string() << "\n";
      lumos::core::CrossSystemStudy study(
          std::vector<lumos::trace::Trace>{std::move(trace)});
      std::cout << study.full_report();
      return 0;
    }

    lumos::core::CrossSystemStudy study(options);
    std::cout << study.full_report() << "\n";
    std::cout << "=== Takeaway verdicts ===\n"
              << lumos::core::render_takeaways(
                     lumos::core::check_takeaways(study));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
