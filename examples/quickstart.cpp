// Quickstart: synthesise a Mira-like week, schedule it with EASY
// backfilling, and print the headline metrics.
//
//   ./quickstart [days]
#include <cstdlib>
#include <iostream>

#include "core/lumos.hpp"

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 7.0;

  // 1. Synthesise a workload calibrated to Mira's published statistics.
  lumos::synth::GeneratorOptions options;
  options.seed = 1;
  options.duration_days = days;
  const auto trace = lumos::synth::generate_system("Mira", options);
  std::cout << "Generated " << trace.size() << " jobs over " << days
            << " days for " << trace.spec().name << " ("
            << trace.user_count() << " users)\n";

  // 2. Sanity-check the trace the way the paper screened its candidates.
  std::cout << lumos::trace::validate(trace).to_string();

  // 3. Schedule it: FCFS + EASY backfilling.
  lumos::sim::SimConfig config;
  config.policy = lumos::sim::PolicyKind::Fcfs;
  config.backfill.kind = lumos::sim::BackfillKind::Easy;
  const auto result = lumos::sim::simulate(trace, config);
  const auto metrics = lumos::sim::compute_metrics(trace, result);
  std::cout << "FCFS+EASY: " << metrics.to_string() << "\n";

  // 4. Compare against the paper's adaptive relaxed backfilling.
  const auto comparison = lumos::core::compare_backfill(trace);
  std::cout << "\nRelaxed vs adaptive relaxed backfilling:\n"
            << lumos::core::render_backfill_study({comparison});
  return 0;
}
