// Emits the five calibrated synthetic traces to disk, in SWF and in the
// lumos CSV dialect — the files any external SWF-based simulator (or a
// rerun of these tools) can consume.
//
//   ./generate_traces [out_dir] [days] [seed]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/lumos.hpp"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "traces";
  const double days = argc > 2 ? std::atof(argv[2]) : 7.0;
  const auto seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  std::filesystem::create_directories(out_dir);
  for (const auto& cal : lumos::synth::all_calibrations()) {
    lumos::synth::GeneratorOptions options;
    options.seed = seed;
    options.duration_days = days;
    lumos::synth::WorkloadGenerator generator(cal, options);
    const auto trace = generator.generate();

    const auto report = lumos::trace::validate(trace);
    if (!report.consistent()) {
      std::cerr << "generated trace failed validation for "
                << trace.spec().name << ":\n"
                << report.to_string();
      return 1;
    }
    const std::string base = out_dir + "/" + trace.spec().name;
    lumos::trace::write_swf_file(base + ".swf", trace);
    std::ofstream csv(base + ".csv");
    lumos::trace::write_lumos_csv(csv, trace);
    std::cout << trace.spec().name << ": " << trace.size() << " jobs -> "
              << base << ".{swf,csv}\n";
  }
  return 0;
}
